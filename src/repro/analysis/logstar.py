"""Iterated-logarithm and tower-function utilities.

The paper's headline bound is ``O(min{log* n, log* Delta})`` where the
levels thresholds grow as a tower: ``L_1 = 2**5`` and
``L_{l+1} = 2**(L_l / 4)``. These helpers compute log*, towers, and the
paper's specific threshold sequence, and are used both by the level
policy and by the analysis/reporting code that overlays theoretical
bounds on measured series.
"""

from __future__ import annotations

import math
from typing import Iterator


def log_star(x: float, base: float = 2.0) -> int:
    """Iterated logarithm: number of times log_base must be applied
    before the value drops to <= 1.

    ``log_star(1) == 0``, ``log_star(2) == 1``, ``log_star(4) == 2``,
    ``log_star(16) == 3``, ``log_star(65536) == 4``.
    """
    if x <= 1:
        return 0
    count = 0
    while x > 1:
        x = math.log(x, base)
        count += 1
        if count > 64:  # pragma: no cover - unreachable for finite floats
            break
    return count


def tower(height: int, base: float = 2.0) -> float:
    """Power tower base^base^...^base of the given height (0 -> 1)."""
    if height < 0:
        raise ValueError("height must be >= 0")
    value = 1.0
    for _ in range(height):
        value = base ** value
        if value > 1e300:
            return math.inf
    return value


def paper_thresholds(max_span: int) -> list[int]:
    """The paper's threshold sequence L_1, L_2, ... up to >= max_span.

    ``L_1 = 2**5 = 32`` and ``L_{l+1} = 2**(L_l // 4)``. Values are
    exact ints (arbitrary precision), so very large thresholds are fine.
    """
    thresholds = [32]
    while thresholds[-1] < max_span:
        nxt = 1 << (thresholds[-1] // 4)
        if nxt <= thresholds[-1]:  # pragma: no cover - defensive
            raise AssertionError("threshold sequence must be strictly increasing")
        thresholds.append(nxt)
    return thresholds


def paper_level_count(max_span: int) -> int:
    """Number of reservation levels needed for windows up to max_span.

    Level 0 (spans <= L_1) is the constant-size base level and is not
    counted; this returns the number of reservation levels, which is
    Theta(log* max_span).
    """
    if max_span <= 32:
        return 0
    return len(paper_thresholds(max_span)) - 1


def iter_tower_sequence(l1: int, shift: int) -> Iterator[int]:
    """Yield L_1, L_2, ... with L_{l+1} = 2**(L_l // shift), forever.

    ``shift=4`` is the paper's sequence. The generator is infinite;
    callers must bound iteration.
    """
    value = l1
    while True:
        yield value
        value = 1 << (value // shift)
