"""Jobs and placements.

A :class:`Job` couples an identifier with a :class:`~repro.core.window.Window`
and a size (processing time). The paper's main results are for unit-size
jobs (``size == 1``); sizes ``> 1`` exist to support the Observation 13
lower bound and the sized-job baseline scheduler.

A :class:`Placement` records where a job currently sits: machine index
plus starting slot. For unit jobs the job occupies exactly that slot; a
size-``k`` job occupies slots ``[slot, slot + k)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from .window import Window

JobId = Hashable


@dataclass(frozen=True, slots=True)
class Job:
    """An immutable job description.

    Attributes
    ----------
    id:
        Any hashable identifier, unique among active jobs.
    window:
        Admissible time window. For a size-``k`` job the *start* slot
        must satisfy ``window.release <= start`` and
        ``start + k <= window.deadline``.
    size:
        Processing time in slots; the paper's core results assume 1.
    """

    id: JobId
    window: Window
    size: int = 1

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"job size must be >= 1, got {self.size}")
        if self.window.span < self.size:
            raise ValueError(
                f"window span {self.window.span} cannot fit a size-{self.size} job"
            )

    @property
    def span(self) -> int:
        """Shorthand for the window's span (paper: 'job's span')."""
        return self.window.span

    @property
    def release(self) -> int:
        return self.window.release

    @property
    def deadline(self) -> int:
        return self.window.deadline

    def with_window(self, window: Window) -> "Job":
        """Copy of this job with a replaced window (used by ALIGNED/trim)."""
        return Job(self.id, window, self.size)

    def admissible_start(self, start: int) -> bool:
        """Can this job legally start at ``start``?"""
        return self.window.release <= start and start + self.size <= self.window.deadline


@dataclass(frozen=True, slots=True)
class Placement:
    """Current location of a job: machine index and start slot."""

    machine: int
    slot: int

    def __post_init__(self) -> None:
        if self.machine < 0:
            raise ValueError("machine index must be >= 0")
