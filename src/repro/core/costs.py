"""Cost accounting for reallocating schedulers.

The paper (Section 2) defines, per request ``r_i``:

- **reallocation cost** — the number of jobs that must be rescheduled
  when ``r_i`` is processed (moved to a different slot and/or machine);
- **migration cost** — the number of jobs whose *machine* changes.

:class:`RequestCost` captures one request's outcome by diffing the
placement maps before and after; :class:`CostLedger` accumulates a whole
execution and computes the aggregates the experiments report (max, mean,
per-request series, scaling against n and Delta).

Convention: the placement of a job inserted *by this request* does not
count as a reallocation (it had no prior placement); the deletion of a
job likewise. Both conventions match the paper's lower-bound accounting
(Lemma 12 counts only the forced moves of *other* jobs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from .job import JobId, Placement


@dataclass(frozen=True, slots=True)
class RequestCost:
    """Cost of a single request, as observed by placement diffing.

    Attributes
    ----------
    kind:
        ``"insert"`` or ``"delete"``.
    subject:
        The job id the request was about.
    rescheduled:
        Ids of pre-existing jobs whose placement changed.
    migrated:
        Ids of pre-existing jobs whose machine changed (subset of
        ``rescheduled``).
    n_active:
        Number of active jobs when the request was processed (the
        paper's ``n_i``; measured *after* inserts, *before* deletes).
    max_span:
        Largest active window span at that time (the paper's ``Delta_i``).
    """

    kind: str
    subject: JobId
    rescheduled: frozenset[JobId]
    migrated: frozenset[JobId]
    n_active: int
    max_span: int

    @property
    def reallocation_cost(self) -> int:
        return len(self.rescheduled)

    @property
    def migration_cost(self) -> int:
        return len(self.migrated)


def diff_placements(
    before: Mapping[JobId, Placement],
    after: Mapping[JobId, Placement],
    *,
    kind: str,
    subject: JobId,
    n_active: int,
    max_span: int,
) -> RequestCost:
    """Build a :class:`RequestCost` from placement snapshots.

    Jobs present only in ``after`` (the inserted job) or only in
    ``before`` (the deleted job) are not counted.
    """
    rescheduled: set[JobId] = set()
    migrated: set[JobId] = set()
    for job_id, old in before.items():
        new = after.get(job_id)
        if new is None:
            continue  # deleted by this request
        if new != old:
            rescheduled.add(job_id)
            if new.machine != old.machine:
                migrated.add(job_id)
    return RequestCost(
        kind=kind,
        subject=subject,
        rescheduled=frozenset(rescheduled),
        migrated=frozenset(migrated),
        n_active=n_active,
        max_span=max_span,
    )


def diff_touched(
    touched: Mapping[JobId, "Placement | None"],
    after: Mapping[JobId, Placement],
    *,
    kind: str,
    subject: JobId,
    n_active: int,
    max_span: int,
) -> RequestCost:
    """Build a :class:`RequestCost` from a sparse pre-request log.

    ``touched`` maps every job whose placement the scheduler mutated
    during the request to its placement *before* the request (None if it
    had none). Semantically identical to :func:`diff_placements` on full
    snapshots — a job moved away and back is not rescheduled, inserts
    and deletes of the subject are not counted — but costs O(touched)
    instead of O(n) per request.
    """
    rescheduled: set[JobId] = set()
    migrated: set[JobId] = set()
    for job_id, old in touched.items():
        if old is None:
            continue  # had no placement before (inserted by this request)
        new = after.get(job_id)
        if new is None:
            continue  # deleted by this request
        if new != old:
            rescheduled.add(job_id)
            if new.machine != old.machine:
                migrated.add(job_id)
    return RequestCost(
        kind=kind,
        subject=subject,
        rescheduled=frozenset(rescheduled),
        migrated=frozenset(migrated),
        n_active=n_active,
        max_span=max_span,
    )


@dataclass
class BatchResult:
    """Outcome of one :meth:`ReallocatingScheduler.apply_batch` call.

    A batch finalizes a *single* sparse cost diff for the whole burst
    (:attr:`net`) plus the per-request :class:`RequestCost` breakdown
    (:attr:`costs`). Only the per-request costs enter the scheduler's
    ledger — recording the net diff as well would double-count — so
    ledger totals stay identical to sequential processing.

    Attributes
    ----------
    costs:
        Per-request costs, in batch order. For a failed non-atomic
        batch this is the committed prefix; for a rolled-back atomic
        batch it is the prefix that *was* applied before the rollback
        (informational — none of it persists).
    net:
        The batch-level cost diff: pre-batch placements vs post-batch
        placements (``kind="batch"``). Jobs moved away and back within
        the batch do not count; jobs inserted and deleted within the
        batch appear nowhere. For a failed non-atomic batch it covers
        the committed prefix; None only for rolled-back atomic batches
        (nothing persisted).
    size:
        Number of requests submitted in the batch.
    atomic:
        Whether the batch ran with all-or-nothing semantics.
    failed / failed_index / failure:
        Set when a request failed. ``failed_index`` is the position of
        the failing request; ``failure`` is its error message.
    rolled_back:
        True when an atomic batch failed and the scheduler was restored
        to its exact pre-batch state.
    error:
        The original exception object (for drivers that re-raise).
    """

    costs: list[RequestCost]
    net: RequestCost | None
    size: int
    atomic: bool
    failed: bool = False
    failed_index: int | None = None
    failure: str | None = None
    rolled_back: bool = False
    error: Exception | None = field(default=None, repr=False)

    @property
    def processed(self) -> int:
        """Requests whose effects persist in the scheduler."""
        return 0 if self.rolled_back else len(self.costs)

    @property
    def total_reallocations(self) -> int:
        return sum(c.reallocation_cost for c in self.costs)

    @property
    def total_migrations(self) -> int:
        return sum(c.migration_cost for c in self.costs)

    def changed_jobs(self) -> list[JobId]:
        """Jobs whose placement any committed request may have changed.

        The union of every per-request subject and rescheduled set, in
        first-seen order — exactly the set an incremental verifier must
        re-check at batch commit.
        """
        seen: dict[JobId, None] = {}
        for cost in self.costs:
            seen.setdefault(cost.subject)
            for job_id in cost.rescheduled:
                seen.setdefault(job_id)
        return list(seen)


@dataclass
class CostLedger:
    """Accumulates per-request costs over an execution."""

    entries: list[RequestCost] = field(default_factory=list)

    def record(self, cost: RequestCost) -> None:
        self.entries.append(cost)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[RequestCost]:
        return iter(self.entries)

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    @property
    def reallocation_costs(self) -> list[int]:
        return [e.reallocation_cost for e in self.entries]

    @property
    def migration_costs(self) -> list[int]:
        return [e.migration_cost for e in self.entries]

    @property
    def total_reallocations(self) -> int:
        return sum(self.reallocation_costs)

    @property
    def total_migrations(self) -> int:
        return sum(self.migration_costs)

    @property
    def max_reallocation(self) -> int:
        return max(self.reallocation_costs, default=0)

    @property
    def max_migration(self) -> int:
        return max(self.migration_costs, default=0)

    @property
    def mean_reallocation(self) -> float:
        if not self.entries:
            return 0.0
        return self.total_reallocations / len(self.entries)

    @property
    def mean_migration(self) -> float:
        if not self.entries:
            return 0.0
        return self.total_migrations / len(self.entries)

    def amortized_reallocation(self) -> float:
        """Alias for :attr:`mean_reallocation` (paper's amortized cost)."""
        return self.mean_reallocation

    def percentile_reallocation(self, q: float) -> int:
        """q-th percentile (0..100) of per-request reallocation cost."""
        costs = sorted(self.reallocation_costs)
        if not costs:
            return 0
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        idx = min(len(costs) - 1, int(round(q / 100 * (len(costs) - 1))))
        return costs[idx]

    def worst_requests(self, top: int = 5) -> list[RequestCost]:
        """The ``top`` most expensive requests by reallocation cost."""
        return sorted(self.entries, key=lambda e: e.reallocation_cost,
                      reverse=True)[:top]

    def cost_vs_n(self) -> list[tuple[int, int]]:
        """(n_active, reallocation_cost) pairs — raw series for scaling plots."""
        return [(e.n_active, e.reallocation_cost) for e in self.entries]

    def summary(self) -> dict[str, float]:
        """A flat dict of the headline aggregates (used by reports)."""
        return {
            "requests": len(self.entries),
            "total_realloc": self.total_reallocations,
            "total_migrations": self.total_migrations,
            "max_realloc": self.max_reallocation,
            "mean_realloc": round(self.mean_reallocation, 4),
            "max_migration": self.max_migration,
            "mean_migration": round(self.mean_migration, 4),
            "p99_realloc": self.percentile_reallocation(99),
        }


def merge_ledgers(ledgers: Iterable[CostLedger]) -> CostLedger:
    """Concatenate several ledgers (e.g. repeated trials) into one."""
    out = CostLedger()
    for ledger in ledgers:
        out.entries.extend(ledger.entries)
    return out


def bucket_max_by_n(entries: Sequence[RequestCost]) -> dict[int, int]:
    """Max reallocation cost bucketed by floor(log2(n_active)).

    Returns a mapping from ``2**b`` (bucket lower edge) to the maximum
    per-request reallocation cost observed while ``n_active`` was in
    ``[2**b, 2**(b+1))``. This is the series the Theorem 1 experiment
    plots against ``log* n``.
    """
    buckets: dict[int, int] = {}
    for e in entries:
        if e.n_active <= 0:
            continue
        b = 1 << (e.n_active.bit_length() - 1)
        buckets[b] = max(buckets.get(b, 0), e.reallocation_cost)
    return dict(sorted(buckets.items()))
