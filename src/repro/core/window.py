"""Time windows for unit jobs.

A :class:`Window` is a half-open integer interval ``[release, deadline)``
with ``span = deadline - release >= 1`` equal to the number of timeslots
in which a unit job with this window may run. The paper writes windows
as closed intervals ``[a_j, d_j]`` with span ``d_j - a_j``; our half-open
convention gives the same span and slot count.

Alignment (Section 2 of the paper): a window is *aligned* if its span is
a power of two ``2**i`` and its release time is a multiple of ``2**i``.
A set of aligned windows is laminar: two aligned windows are equal,
disjoint, or one contains the other.

``Window.aligned_within`` implements the paper's ``ALIGNED(W)`` operator
(Section 5): a largest aligned window contained in ``W``, which is
guaranteed to have span ``>= |W| / 4`` (Lemma 10 relies on this).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


def is_power_of_two(x: int) -> bool:
    """Return True iff ``x`` is a positive power of two (1 counts)."""
    return x > 0 and (x & (x - 1)) == 0


def floor_log2(x: int) -> int:
    """Largest ``i`` with ``2**i <= x``; requires ``x >= 1``."""
    if x < 1:
        raise ValueError(f"floor_log2 requires x >= 1, got {x}")
    return x.bit_length() - 1


@dataclass(frozen=True, slots=True)
class Window:
    """Half-open integer time window ``[release, deadline)``.

    Attributes
    ----------
    release:
        Earliest slot (inclusive) the job may occupy.
    deadline:
        First slot the job may *not* occupy (exclusive bound).
    """

    release: int
    deadline: int
    # Precomputed hash and span: windows key every reservation-level
    # table and span feeds the ladder-position arithmetic, so both are
    # hot (bench E10c) and the endpoints are frozen anyway.
    _hash: int = None  # type: ignore[assignment]
    span: int = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not isinstance(self.release, int) or not isinstance(self.deadline, int):
            raise TypeError("window endpoints must be integers")
        if self.deadline <= self.release:
            raise ValueError(
                f"window must satisfy deadline > release, got [{self.release}, {self.deadline})"
            )
        object.__setattr__(self, "_hash", hash((self.release, self.deadline)))
        object.__setattr__(self, "span", self.deadline - self.release)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Window:
            return NotImplemented
        return (self.release == other.release
                and self.deadline == other.deadline)

    # ------------------------------------------------------------------
    # basic geometry
    # ------------------------------------------------------------------
    def __contains__(self, slot: int) -> bool:
        return self.release <= slot < self.deadline

    def slots(self) -> range:
        """All slots the window admits, in increasing order."""
        return range(self.release, self.deadline)

    def contains_window(self, other: "Window") -> bool:
        """True iff ``other`` nests inside (or equals) this window."""
        return self.release <= other.release and other.deadline <= self.deadline

    def overlaps(self, other: "Window") -> bool:
        """True iff the two windows share at least one slot."""
        return self.release < other.deadline and other.release < self.deadline

    def intersect(self, other: "Window") -> "Window | None":
        """The common sub-window, or None if disjoint."""
        lo = max(self.release, other.release)
        hi = min(self.deadline, other.deadline)
        if lo >= hi:
            return None
        return Window(lo, hi)

    # ------------------------------------------------------------------
    # alignment
    # ------------------------------------------------------------------
    @property
    def is_aligned(self) -> bool:
        """Span is ``2**i`` and release is a multiple of ``2**i``."""
        s = self.span
        return is_power_of_two(s) and self.release % s == 0

    def aligned_within(self) -> "Window":
        """The paper's ``ALIGNED(W)``: a largest aligned window inside W.

        Guaranteed ``span >= self.span // 4`` (and in fact strictly more
        than ``self.span / 4``); see Lemma 10. Deterministic: among the
        largest candidates, the leftmost is chosen.
        """
        if self.is_aligned:
            return self
        for i in range(floor_log2(self.span), -1, -1):
            size = 1 << i
            start = -(-self.release // size) * size  # ceil to multiple of size
            if start + size <= self.deadline:
                return Window(start, start + size)
        raise AssertionError("unreachable: span >= 1 always admits a size-1 aligned window")

    def trim(self, max_span: int) -> "Window":
        """Shrink the window to at most ``max_span`` slots (keep the left end).

        Used by the n*-trimming step of Section 4 ("reducing it
        arbitrarily to size 2*gamma*n*"); the choice of which part to
        keep is arbitrary per the paper, we keep the prefix.
        """
        if max_span < 1:
            raise ValueError("max_span must be >= 1")
        if self.span <= max_span:
            return self
        return Window(self.release, self.release + max_span)

    # ------------------------------------------------------------------
    # laminar / aligned-family helpers
    # ------------------------------------------------------------------
    def aligned_parent(self) -> "Window":
        """The aligned window of twice the span containing this one.

        Only valid for aligned windows.
        """
        if not self.is_aligned:
            raise ValueError(f"{self} is not aligned")
        size = self.span * 2
        start = (self.release // size) * size
        return Window(start, start + size)

    def aligned_ancestors(self, max_span: int) -> Iterator["Window"]:
        """Aligned windows strictly containing this one, up to ``max_span``."""
        w = self
        while w.span * 2 <= max_span:
            w = w.aligned_parent()
            yield w

    def aligned_children(self) -> tuple["Window", "Window"]:
        """The two aligned halves of an aligned window with span >= 2."""
        if not self.is_aligned:
            raise ValueError(f"{self} is not aligned")
        if self.span < 2:
            raise ValueError("a span-1 window has no children")
        mid = self.release + self.span // 2
        return Window(self.release, mid), Window(mid, self.deadline)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Window({self.release}, {self.deadline})"


def aligned_window_covering(slot: int, span: int) -> Window:
    """The unique aligned window of the given power-of-two span containing ``slot``."""
    if not is_power_of_two(span):
        raise ValueError(f"span must be a power of two, got {span}")
    start = (slot // span) * span
    return Window(start, start + span)
