"""Core model: jobs, windows, requests, schedules, costs, scheduler protocol."""

from .base import ReallocatingScheduler
from .costs import (
    BatchResult,
    CostLedger,
    RequestCost,
    bucket_max_by_n,
    diff_placements,
    merge_ledgers,
)
from .events import Event, EventTracer, NullTracer
from .exceptions import (
    InfeasibleError,
    InvalidRequestError,
    ReproError,
    UnderallocationError,
    ValidationError,
    WorkerCrashError,
)
from .job import Job, JobId, Placement
from .requests import (
    Batch,
    DeleteJob,
    InsertJob,
    Request,
    RequestSequence,
    delete,
    insert,
    iter_batches,
)
from .schedule import format_schedule, is_feasible_schedule, machine_loads, verify_schedule
from .window import Window, aligned_window_covering, floor_log2, is_power_of_two

__all__ = [
    "ReallocatingScheduler",
    "Batch",
    "BatchResult",
    "CostLedger",
    "RequestCost",
    "bucket_max_by_n",
    "diff_placements",
    "merge_ledgers",
    "Event",
    "EventTracer",
    "NullTracer",
    "InfeasibleError",
    "InvalidRequestError",
    "ReproError",
    "UnderallocationError",
    "ValidationError",
    "WorkerCrashError",
    "Job",
    "JobId",
    "Placement",
    "DeleteJob",
    "InsertJob",
    "Request",
    "RequestSequence",
    "delete",
    "insert",
    "iter_batches",
    "format_schedule",
    "is_feasible_schedule",
    "machine_loads",
    "verify_schedule",
    "Window",
    "aligned_window_covering",
    "floor_log2",
    "is_power_of_two",
]
