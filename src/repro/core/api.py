"""The paper's Theorem 1 scheduler, assembled end to end.

:class:`ReservationScheduler` composes the three constructions exactly
as the proof of Theorem 1 does:

1. **Align** (Section 5): each new job's window is replaced by
   ``ALIGNED(W)`` (losing a factor <= 4 of slack, Lemma 10);
2. **Delegate** (Section 3): the job is assigned to a machine by
   per-window round-robin (losing a factor 6, Lemma 3; at most one
   migration per request);
3. **Reserve** (Section 4): each machine runs single-machine
   pecking-order scheduling with reservations, with windows trimmed to
   ``2 * gamma * n*`` (Lemma 9: ``O(min{log* n, log* Delta})``
   reallocations per request).

Guarantee: for gamma-underallocated request sequences (gamma a
sufficiently large constant; the paper does not optimize it and neither
do we — experiment E9 measures the empirical threshold), every request
costs ``O(min{log* n, log* Delta})`` reallocations and at most one
migration.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterable, Mapping

from ..alignment.align import align_job
from ..analysis.sanitize import sanitize_enabled
from ..levels.policy import LevelPolicy, PAPER_POLICY
from ..multimachine.delegation import DelegatingScheduler
from ..reservation.trimming import TrimmedReservationScheduler
from .base import ReallocatingScheduler, _BatchContext
from .costs import BatchResult, RequestCost
from .exceptions import InvalidRequestError
from .job import Job, JobId, Placement
from .requests import Batch, DeleteJob, InsertJob, Request
from .window import Window


class ReservationScheduler(ReallocatingScheduler):
    """Theorem 1: m-machine reallocating scheduler for unit jobs.

    Parameters
    ----------
    num_machines:
        Machine count m.
    gamma:
        Power-of-two slack constant used by the trimming layer.
    policy:
        Level decomposition policy (paper tower by default).
    trim:
        Disable to skip the n*-trimming layer (pure log* Delta bound);
        enabled by default, giving the min{log* n, log* Delta} bound.
    deamortized:
        Use the even/odd-slot incremental rebuild (Section 4, end):
        O(1) *worst-case* cost per request instead of O(1) amortized
        with Theta(n) rebuild spikes. Requires twice the slack
        (2*gamma-underallocated instances) and aligned spans >= 2, so
        original windows must have span >= 5 to survive ALIGNED().
    journal:
        Undo-journal representation of the per-machine reservation
        schedulers: ``"arena"`` (default — tuple-opcode entries on a
        reusable arena), ``"closure"`` (the original closure journal,
        kept as the rollback-equivalence test oracle), or
        ``"arena-sanitize"`` (arena plus checking container proxies,
        the runtime journal-coverage oracle; also selected by
        ``REPRO_SANITIZE=1`` in the environment).

    Example
    -------
    >>> from repro import Job, Window
    >>> from repro.core.api import ReservationScheduler
    >>> sched = ReservationScheduler(num_machines=2)
    >>> cost = sched.insert(Job("patient-1", Window(3, 17)))
    >>> cost.reallocation_cost
    0
    >>> sched.placements["patient-1"].slot in Window(3, 17)
    True
    """

    _sparse_costing = True

    def __init__(
        self,
        num_machines: int = 1,
        *,
        gamma: int = 8,
        policy: LevelPolicy = PAPER_POLICY,
        trim: bool = True,
        deamortized: bool = False,
        journal: str = "arena",
    ) -> None:
        super().__init__(num_machines=num_machines)
        if journal == "arena" and sanitize_enabled():
            journal = "arena-sanitize"
        self.gamma = gamma
        self.policy = policy
        self.journal_impl = journal
        if deamortized:
            from ..reservation.deamortized import DeamortizedReservationScheduler

            def factory() -> ReallocatingScheduler:
                return DeamortizedReservationScheduler(gamma=gamma, policy=policy,
                                                       journal=journal)
        elif trim:
            def factory() -> ReallocatingScheduler:
                return TrimmedReservationScheduler(gamma=gamma, policy=policy,
                                                   journal=journal)
        else:
            from ..reservation.scheduler import AlignedReservationScheduler

            def factory() -> ReallocatingScheduler:
                return AlignedReservationScheduler(policy, journal=journal)
        self.delegator = DelegatingScheduler(num_machines, factory)
        #: per-batch memo of pre-aligned insert jobs (id -> queue)
        self._align_memo: dict[JobId, deque[Job]] = {}

    @property
    def placements(self) -> Mapping[JobId, Placement]:
        return self.delegator.placements

    def _apply_insert(self, job: Job) -> None:
        memo = self._align_memo
        queue = memo.get(job.id) if memo else None
        eff = queue.popleft() if queue else align_job(job)
        self.delegator.insert(eff)
        self._merge_touched(self.delegator.last_touched)

    def _apply_delete(self, job: Job) -> None:
        self.delegator.delete(job.id)
        self._merge_touched(self.delegator.last_touched)

    # ------------------------------------------------------------------
    # batch lifecycle
    # ------------------------------------------------------------------
    #: placements pass through the delegator, whose own abort restores
    #: them — no batch touched log needed at this layer (unless top,
    #: where the batch net diff still requires one)
    _batch_restore_needs_touched = False

    def supports_atomic_batches(self) -> bool:
        return self.delegator.supports_atomic_batches()

    def _flexible_insert_order_key(self) -> "Callable[[Job], Any] | None":
        """The whole stack agrees on the delegation layer's order."""
        return self.delegator._flexible_insert_order_key()

    def _flexible_size_hint(self, deletes: list[DeleteJob],
                            inserts: list[Job]) -> None:
        """Pass the planned net size change down to the delegation."""
        self.delegator._flexible_size_hint(deletes, inserts)

    def _batch_prepare(self, inserts: list[Job], *,
                       flexible: bool = False) -> None:
        """Align the batch's windows once and plan the delegation.

        Alignment is a total pure function of the job, so precomputing
        it for the whole burst is free of semantic risk; the aligned
        jobs are what the delegator grouping must key on. Per-id queues
        keep repeated ids (insert, delete, insert again) paired with
        the right insert, since the batch consumes them in order.

        A flexible batch's insert phase is elision-free and runs after
        the coalesced deletes, so ``ALIGNED(W)`` is additionally
        memoized per *distinct window* — one alignment computation per
        touched window instead of per request (burst arrivals reuse a
        focus window heavily).
        """
        memo: dict[JobId, deque[Job]] = {}
        aligned: list[Job] = []
        if flexible:
            window_memo: dict[Window, Window] = {}
            for job in inserts:
                win = window_memo.get(job.window)
                if win is None:
                    win = job.window.aligned_within()
                    window_memo[job.window] = win
                eff = job.with_window(win)
                memo.setdefault(job.id, deque()).append(eff)
                aligned.append(eff)
        else:
            for job in inserts:
                eff = align_job(job)
                memo.setdefault(job.id, deque()).append(eff)
                aligned.append(eff)
        self._align_memo = memo
        self.delegator._batch_prepare(aligned, flexible=flexible)

    def _batch_begin(self, *, atomic: bool, top: bool,
                     ephemeral: bool = False,
                     emit_touched: bool = True) -> None:
        super()._batch_begin(atomic=atomic, top=top, ephemeral=ephemeral,
                             emit_touched=emit_touched)
        self.delegator._batch_begin(atomic=atomic, top=False,
                                    ephemeral=ephemeral)

    def _batch_commit(self) -> None:
        super()._batch_commit()
        self._align_memo = {}
        self.delegator._batch_commit()

    def _batch_restore(self, ctx: _BatchContext) -> None:
        self._align_memo = {}
        self.delegator._batch_abort()

    # ------------------------------------------------------------------
    # sharded bursts
    # ------------------------------------------------------------------
    def supports_sharded_batches(self) -> bool:
        return self.delegator.supports_sharded_batches()

    def apply_batch_sharded(
        self,
        requests: Batch | Iterable[Request],
        *,
        workers: str | None = None,
        parallel: bool = False,
        semantics: str = "strict",
    ) -> BatchResult:
        """Drive a burst shard-first through the delegation layer.

        The alignment step is a pure per-job function, so the whole
        burst is pre-aligned here and handed to
        :meth:`~repro.multimachine.delegation.DelegatingScheduler.
        apply_batch_sharded` (``workers`` selects serial / thread /
        process-resident shard workers); this layer then re-costs each
        request against its own view (original jobs, hence original —
        not aligned — max spans) exactly as sequential processing would,
        keeping ledger entries bit-identical to ``apply``/``apply_batch``.
        ``semantics="flexible"`` plans the aligned burst jointly inside
        the delegation layer; the costs still come back one per request
        at arrival positions (elided pairs as zero-cost entries), so
        the re-costing zip below is semantics-agnostic.
        """
        batch = requests if isinstance(requests, Batch) else Batch(requests)
        if self._batch is not None:
            raise InvalidRequestError(
                "apply_batch_sharded cannot run inside an open batch")
        aligned = Batch([
            InsertJob(align_job(r.job)) if isinstance(r, InsertJob) else r
            for r in batch
        ])
        inner = self.delegator.apply_batch_sharded(
            aligned, workers=workers, parallel=parallel, record=False,
            semantics=semantics)
        if inner.failed:
            return BatchResult(
                costs=[], net=None, size=len(batch), atomic=True,
                failed=True, failed_index=inner.failed_index,
                failure=inner.failure, rolled_back=True, error=inner.error,
            )
        costs = []
        record = self.ledger.record
        for request, inner_cost in zip(batch, inner.costs):
            if isinstance(request, InsertJob):
                job = request.job
                self.jobs[job.id] = job
                self._span_add(job.span)
                n_active, max_span = len(self.jobs), self._max_span_cache
            else:
                job = self.jobs[request.job_id]
                n_active, max_span = len(self.jobs), self._max_span_cache
                del self.jobs[request.job_id]
                self._span_remove(job.span)
            cost = RequestCost(
                kind=inner_cost.kind, subject=inner_cost.subject,
                rescheduled=inner_cost.rescheduled,
                migrated=inner_cost.migrated,
                n_active=n_active, max_span=max_span,
            )
            record(cost)
            costs.append(cost)
        net = inner.net
        if net is not None:
            net = RequestCost(
                kind=net.kind, subject=net.subject,
                rescheduled=net.rescheduled, migrated=net.migrated,
                n_active=len(self.jobs), max_span=self._max_span_cache,
            )
        self.last_touched = None
        return BatchResult(costs=costs, net=net, size=len(batch), atomic=True)

    def close_shard_workers(self) -> None:
        """Release process-resident shard workers (state synced back)."""
        self.delegator.close_shard_workers()

    # ------------------------------------------------------------------
    def check_balance(self) -> None:
        """Assert the Section 3 per-window balance invariant."""
        self.delegator.check_balance()

    def machine_schedulers(self) -> list[ReallocatingScheduler]:
        """The per-machine single-machine schedulers (diagnostics).

        Syncs worker-resident state back first, so the returned
        schedulers are live even after process-sharded bursts.
        """
        self.delegator.close_shard_workers()
        return list(self.delegator.machines)
