"""Scheduling requests and request sequences.

The paper's online model (Section 2): an execution is a sequence of
``<INSERTJOB, name, arrival, deadline>`` and ``<DELETEJOB, name>``
requests; before each request the scheduler must output a feasible
schedule for the active jobs.

:class:`RequestSequence` is a validated, serializable container for such
executions; it also computes the active job set after any prefix, which
the feasibility checker and the workload generators use.

:class:`Batch` is the burst-shaped unit of the batch-first API: an
ordered chunk of requests submitted to
``ReallocatingScheduler.apply_batch`` as one (optionally atomic)
transaction. :func:`iter_batches` chunks any request stream into
batches. Under ``semantics="flexible"`` the scheduler may *plan* a
batch jointly — coalescing deletes ahead of inserts, eliding interior
insert/delete pairs, and reordering the surviving inserts — as long as
the observable protocol is preserved: one ledger entry per request at
its arrival position, the same post-batch job table, and every
per-request cost within the Theorem 1 bounds (see
``ReallocatingScheduler.apply_batch``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from .exceptions import InvalidRequestError
from .job import Job, JobId
from .window import Window


@dataclass(frozen=True, slots=True)
class InsertJob:
    """Insert request; carries the full job description."""

    job: Job

    @property
    def job_id(self) -> JobId:
        return self.job.id

    @property
    def kind(self) -> str:
        return "insert"


@dataclass(frozen=True, slots=True)
class DeleteJob:
    """Delete request; refers to an active job by id."""

    job_id: JobId

    @property
    def kind(self) -> str:
        return "delete"


Request = InsertJob | DeleteJob


class Batch:
    """An ordered burst of requests submitted as one unit.

    The batch-first request API (``ReallocatingScheduler.apply_batch``)
    consumes these: requests are applied in order, the scheduler opens
    one touched-placement log for the whole burst, and — with
    ``atomic=True`` — a mid-batch failure rolls every request back.

    A :class:`Batch` is deliberately thin: unlike
    :class:`RequestSequence` it does not validate the insert/delete
    protocol (validity depends on the scheduler's live active set, which
    only ``apply_batch`` can see). It pre-splits inserts from deletes so
    schedulers can plan the burst (per-window grouping, machine
    sub-batches) before applying it.
    """

    __slots__ = ("requests",)

    def __init__(self, requests: Iterable[Request] = ()) -> None:
        self.requests: tuple[Request, ...] = tuple(requests)
        for r in self.requests:
            if not isinstance(r, (InsertJob, DeleteJob)):
                raise InvalidRequestError(f"unknown request type: {r!r}")

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __getitem__(self, i: int) -> Request:
        return self.requests[i]

    @property
    def insert_jobs(self) -> list[Job]:
        """The jobs inserted by this batch, in batch order."""
        return [r.job for r in self.requests if isinstance(r, InsertJob)]

    @property
    def delete_ids(self) -> list[JobId]:
        """The job ids deleted by this batch, in batch order."""
        return [r.job_id for r in self.requests if isinstance(r, DeleteJob)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n_ins = sum(1 for r in self.requests if isinstance(r, InsertJob))
        return (f"Batch(len={len(self.requests)}, inserts={n_ins}, "
                f"deletes={len(self.requests) - n_ins})")


def iter_batches(
    requests: "Iterable[Request] | RequestSequence",
    batch_size: int,
) -> Iterator[Batch]:
    """Chunk a request stream into :class:`Batch` objects of ``batch_size``.

    The last batch may be shorter. ``batch_size`` must be >= 1; drivers
    treat size 1 as the sequential path but the chunking works there too.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    pending: list[Request] = []
    for r in requests:
        pending.append(r)
        if len(pending) == batch_size:
            yield Batch(pending)
            pending = []
    if pending:
        yield Batch(pending)


def insert(job_id: JobId, release: int, deadline: int, size: int = 1) -> InsertJob:
    """Convenience constructor mirroring the paper's INSERTJOB tuple."""
    return InsertJob(Job(job_id, Window(release, deadline), size))


def delete(job_id: JobId) -> DeleteJob:
    """Convenience constructor mirroring the paper's DELETEJOB tuple."""
    return DeleteJob(job_id)


class RequestSequence:
    """An ordered, validated sequence of scheduling requests.

    Validation enforces the online model's sanity conditions: a job id
    may not be inserted while active, and only active jobs may be
    deleted. (Re-inserting an id after it was deleted is allowed; the
    *job* is considered a new one.)
    """

    def __init__(self, requests: Iterable[Request] = ()) -> None:
        self._requests: list[Request] = []
        self._active: dict[JobId, Job] = {}
        self._max_active = 0
        for r in requests:
            self.append(r)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def append(self, request: Request) -> None:
        if isinstance(request, InsertJob):
            if request.job_id in self._active:
                raise InvalidRequestError(
                    f"job id {request.job_id!r} is already active; cannot insert"
                )
            self._active[request.job_id] = request.job
        elif isinstance(request, DeleteJob):
            if request.job_id not in self._active:
                raise InvalidRequestError(
                    f"job id {request.job_id!r} is not active; cannot delete"
                )
            del self._active[request.job_id]
        else:  # pragma: no cover - defensive
            raise InvalidRequestError(f"unknown request type: {request!r}")
        self._requests.append(request)
        self._max_active = max(self._max_active, len(self._active))

    def insert(self, job_id: JobId, release: int, deadline: int, size: int = 1) -> None:
        self.append(insert(job_id, release, deadline, size))

    def delete(self, job_id: JobId) -> None:
        self.append(delete(job_id))

    def extend(self, requests: Iterable[Request]) -> None:
        for r in requests:
            self.append(r)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self._requests)

    def __getitem__(self, i: int) -> Request:
        return self._requests[i]

    @property
    def requests(self) -> Sequence[Request]:
        return tuple(self._requests)

    @property
    def final_active_jobs(self) -> dict[JobId, Job]:
        """Active jobs after the whole sequence (a copy)."""
        return dict(self._active)

    @property
    def max_active(self) -> int:
        """Peak number of simultaneously active jobs over the sequence."""
        return self._max_active

    def active_after(self, prefix_len: int) -> dict[JobId, Job]:
        """Active job set after the first ``prefix_len`` requests."""
        if not 0 <= prefix_len <= len(self._requests):
            raise IndexError(prefix_len)
        active: dict[JobId, Job] = {}
        for r in self._requests[:prefix_len]:
            if isinstance(r, InsertJob):
                active[r.job_id] = r.job
            else:
                del active[r.job_id]
        return active

    def active_sets(self) -> Iterator[dict[JobId, Job]]:
        """Yield the active job set after every request (fresh dicts)."""
        active: dict[JobId, Job] = {}
        for r in self._requests:
            if isinstance(r, InsertJob):
                active[r.job_id] = r.job
            else:
                del active[r.job_id]
            yield dict(active)

    def max_span(self) -> int:
        """Largest window span over all inserted jobs (1 if none)."""
        spans = [r.job.span for r in self._requests if isinstance(r, InsertJob)]
        return max(spans, default=1)

    def time_horizon(self) -> int:
        """Smallest ``T`` such that every window fits in ``[0, T)``."""
        deadlines = [r.job.deadline for r in self._requests if isinstance(r, InsertJob)]
        return max(deadlines, default=1)

    # ------------------------------------------------------------------
    # serialization (trace record / replay)
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize to a JSON string (job ids must be JSON-compatible)."""
        out = []
        for r in self._requests:
            if isinstance(r, InsertJob):
                out.append({
                    "op": "insert",
                    "id": r.job.id,
                    "release": r.job.release,
                    "deadline": r.job.deadline,
                    "size": r.job.size,
                })
            else:
                out.append({"op": "delete", "id": r.job_id})
        return json.dumps(out)

    @classmethod
    def from_json(cls, text: str) -> "RequestSequence":
        data = json.loads(text)
        seq = cls()
        for item in data:
            if item["op"] == "insert":
                seq.insert(item["id"], item["release"], item["deadline"],
                           item.get("size", 1))
            elif item["op"] == "delete":
                seq.delete(item["id"])
            else:
                raise InvalidRequestError(f"unknown op in trace: {item['op']!r}")
        return seq

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"RequestSequence(len={len(self)}, active={len(self._active)}, "
                f"max_active={self._max_active})")
