"""Fine-grained event tracing for schedulers.

The cost ledger (``costs.py``) measures *what changed* per request by
diffing placements; the event tracer records *why* — which mechanism of
the reservation scheduler (RESERVE, MOVE, PLACE, displacement, rebuild,
migration) moved each job. Events are cheap dataclasses appended to a
:class:`EventTracer`; schedulers accept an optional tracer and emit into
it, so tracing costs nothing when disabled.

The per-mechanism breakdown feeds the E1/E2 reports ("how many moves
came from reservation churn vs. cross-level displacement?") and is
invaluable when debugging invariant violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .job import JobId


@dataclass(frozen=True, slots=True)
class Event:
    """A single traced action.

    Attributes
    ----------
    action:
        One of ``place``, ``move``, ``displace``, ``reserve-evict``,
        ``migrate``, ``rebuild``, ``trim``, ``base-cascade``.
    job_id:
        The affected job (None for instance-level events like rebuild).
    level:
        Scheduler level at which the action happened (None if n/a).
    detail:
        Free-form context (slot numbers, window, machine).
    """

    action: str
    job_id: JobId | None = None
    level: int | None = None
    detail: str = ""


class EventTracer:
    """Appendable event log with per-action counters."""

    def __init__(self, *, keep_events: bool = True) -> None:
        self._keep = keep_events
        self.events: list[Event] = []
        self.counters: dict[str, int] = {}

    def emit(self, action: str, job_id: JobId | None = None,
             level: int | None = None, detail: str = "") -> None:
        self.counters[action] = self.counters.get(action, 0) + 1
        if self._keep:
            self.events.append(Event(action, job_id, level, detail))

    def count(self, action: str) -> int:
        return self.counters.get(action, 0)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def clear(self) -> None:
        self.events.clear()
        self.counters.clear()

    def breakdown(self) -> dict[str, int]:
        """Counter snapshot sorted by action name."""
        return dict(sorted(self.counters.items()))


@dataclass
class NullTracer:
    """Tracer that drops everything; the default for production runs."""

    counters: dict[str, int] = field(default_factory=dict)

    def emit(self, action: str, job_id: JobId | None = None,
             level: int | None = None, detail: str = "") -> None:
        pass

    def count(self, action: str) -> int:
        return 0

    def breakdown(self) -> dict[str, int]:
        return {}
