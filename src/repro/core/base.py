"""The reallocating-scheduler interface.

Every scheduler in this library — the paper's reservation scheduler, the
naive pecking-order scheduler, EDF/LLF rebuilds, the per-request-optimal
matcher — implements :class:`ReallocatingScheduler`. The base class
standardizes cost measurement: subclasses implement ``_apply_insert`` /
``_apply_delete`` mutating their internal placement map, and the base
class diffs placements around each request to produce a
:class:`~repro.core.costs.RequestCost`. That keeps cost accounting
uniform and scheduler-independent, exactly as the paper's job-centered
cost model demands.

Two costing modes exist. The default snapshots the whole placement map
before each request and diffs after — O(n) per request, correct for any
subclass. Schedulers on the fast path set ``_sparse_costing = True`` and
call :meth:`_log_touch` before every placement mutation; the base class
then diffs only the touched jobs (:func:`~repro.core.costs.diff_touched`),
making cost accounting O(reallocations) per request — the paper's
O(log* n) — instead of O(n). The largest active span (the paper's
``Delta_i``) is likewise tracked incrementally instead of rescanned.
"""

from __future__ import annotations

import abc
from typing import Mapping

from .costs import CostLedger, RequestCost, diff_placements, diff_touched
from .exceptions import InvalidRequestError
from .job import Job, JobId, Placement
from .requests import DeleteJob, InsertJob, Request


class ReallocatingScheduler(abc.ABC):
    """Base class for online schedulers that maintain a feasible schedule.

    Parameters
    ----------
    num_machines:
        Number of identical machines ``m``.

    Subclass contract
    -----------------
    - ``_apply_insert(job)`` must place ``job`` (and may move others).
    - ``_apply_delete(job)`` must unplace ``job`` (and may move others).
    - ``placements`` must always reflect the live schedule.
    - Sparse-costing subclasses (``_sparse_costing = True``) must call
      :meth:`_log_touch` (or :meth:`_merge_touched`) before mutating any
      job's placement, including wrapped sub-schedulers' moves.

    Subclasses must raise :class:`InfeasibleError` /
    :class:`UnderallocationError` *before* corrupting state, or restore
    state on failure, so callers can fall back to another scheduler.
    """

    #: subclasses that log touched placements (pre-request values) set
    #: this True to get O(reallocations) instead of O(n) cost diffing.
    _sparse_costing = False

    def __init__(self, num_machines: int = 1) -> None:
        if num_machines < 1:
            raise ValueError("num_machines must be >= 1")
        self.num_machines = num_machines
        self.jobs: dict[JobId, Job] = {}
        self.ledger = CostLedger()
        #: live touched-placement log (active only inside a request)
        self._touched: dict[JobId, Placement | None] | None = None
        #: touched log of the most recent completed request (sparse mode
        #: only) — wrappers fold it into their own log via _merge_touched
        self.last_touched: dict[JobId, Placement | None] | None = None
        #: span -> active-job count, for O(1) amortized max-span tracking
        self._span_counts: dict[int, int] = {}
        self._max_span_cache = 1

    # ------------------------------------------------------------------
    # subclass API
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def placements(self) -> Mapping[JobId, Placement]:
        """Live placement map (job id -> machine, slot)."""

    @abc.abstractmethod
    def _apply_insert(self, job: Job) -> None:
        """Place ``job`` into the schedule, moving others if necessary."""

    @abc.abstractmethod
    def _apply_delete(self, job: Job) -> None:
        """Remove ``job`` from the schedule, moving others if desired."""

    # ------------------------------------------------------------------
    # sparse costing support
    # ------------------------------------------------------------------
    def _log_touch(self, job_id: JobId) -> None:
        """Record ``job_id``'s pre-request placement (first touch wins)."""
        t = self._touched
        if t is not None and job_id not in t:
            t[job_id] = self.placements.get(job_id)

    def _merge_touched(
        self, touched: Mapping[JobId, Placement | None] | None
    ) -> None:
        """Fold a wrapped scheduler's touched log into this request's.

        Only valid when the wrapper's placements are coordinate-identical
        to the wrapped scheduler's (pass-through properties).
        """
        t = self._touched
        if t is None or touched is None:
            return
        for job_id, old in touched.items():
            if job_id not in t:
                t[job_id] = old

    # ------------------------------------------------------------------
    # public online interface
    # ------------------------------------------------------------------
    def insert(self, job: Job) -> RequestCost:
        """Process an INSERTJOB request and return its measured cost."""
        if job.id in self.jobs:
            raise InvalidRequestError(f"job {job.id!r} already active")
        sparse = self._sparse_costing
        before = None if sparse else dict(self.placements)
        if sparse:
            self._touched = {}
        self.jobs[job.id] = job
        try:
            self._apply_insert(job)
        except Exception:
            self.jobs.pop(job.id, None)
            self._touched = None
            raise
        self._span_add(job.span)
        if sparse:
            touched, self._touched = self._touched, None
            self.last_touched = touched
            cost = diff_touched(
                touched, self.placements,
                kind="insert", subject=job.id,
                n_active=len(self.jobs), max_span=self._max_span_cache,
            )
        else:
            self.last_touched = None
            cost = diff_placements(
                before, self.placements,
                kind="insert", subject=job.id,
                n_active=len(self.jobs), max_span=self._max_span_cache,
            )
        self.ledger.record(cost)
        return cost

    def delete(self, job_id: JobId) -> RequestCost:
        """Process a DELETEJOB request and return its measured cost."""
        job = self.jobs.get(job_id)
        if job is None:
            raise InvalidRequestError(f"job {job_id!r} not active")
        n_active = len(self.jobs)
        max_span = self._max_span_cache
        sparse = self._sparse_costing
        before = None if sparse else dict(self.placements)
        if sparse:
            self._touched = {}
        try:
            self._apply_delete(job)
        except Exception:
            self._touched = None
            raise
        del self.jobs[job_id]
        self._span_remove(job.span)
        if sparse:
            touched, self._touched = self._touched, None
            self.last_touched = touched
            cost = diff_touched(
                touched, self.placements,
                kind="delete", subject=job_id,
                n_active=n_active, max_span=max_span,
            )
        else:
            self.last_touched = None
            cost = diff_placements(
                before, self.placements,
                kind="delete", subject=job_id,
                n_active=n_active, max_span=max_span,
            )
        self.ledger.record(cost)
        return cost

    def apply(self, request: Request) -> RequestCost:
        """Dispatch a request object (insert or delete)."""
        if isinstance(request, InsertJob):
            return self.insert(request.job)
        if isinstance(request, DeleteJob):
            return self.delete(request.job_id)
        raise InvalidRequestError(f"unknown request: {request!r}")

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _span_add(self, span: int) -> None:
        counts = self._span_counts
        counts[span] = counts.get(span, 0) + 1
        if span > self._max_span_cache:
            self._max_span_cache = span

    def _span_remove(self, span: int) -> None:
        counts = self._span_counts
        n = counts[span] - 1
        if n:
            counts[span] = n
        else:
            del counts[span]
            if span == self._max_span_cache:
                self._max_span_cache = max(counts, default=1)

    def _max_span(self) -> int:
        """Largest active span, recomputed from scratch.

        Kept for subclasses that record costs outside insert/delete
        (e.g. elastic machine changes); the base paths use the O(1)
        incremental ``_max_span_cache``.
        """
        return max((j.span for j in self.jobs.values()), default=1)

    @property
    def n_active(self) -> int:
        return len(self.jobs)

    def snapshot(self) -> dict[JobId, Placement]:
        """A copy of the current placements."""
        return dict(self.placements)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(m={self.num_machines}, "
                f"active={len(self.jobs)})")
