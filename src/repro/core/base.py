"""The reallocating-scheduler interface.

Every scheduler in this library — the paper's reservation scheduler, the
naive pecking-order scheduler, EDF/LLF rebuilds, the per-request-optimal
matcher — implements :class:`ReallocatingScheduler`. The base class
standardizes cost measurement: subclasses implement ``_apply_insert`` /
``_apply_delete`` mutating their internal placement map, and the base
class diffs placements around each request to produce a
:class:`~repro.core.costs.RequestCost`. That keeps cost accounting
uniform and scheduler-independent, exactly as the paper's job-centered
cost model demands.
"""

from __future__ import annotations

import abc
from typing import Mapping

from .costs import CostLedger, RequestCost, diff_placements
from .exceptions import InvalidRequestError
from .job import Job, JobId, Placement
from .requests import DeleteJob, InsertJob, Request


class ReallocatingScheduler(abc.ABC):
    """Base class for online schedulers that maintain a feasible schedule.

    Parameters
    ----------
    num_machines:
        Number of identical machines ``m``.

    Subclass contract
    -----------------
    - ``_apply_insert(job)`` must place ``job`` (and may move others).
    - ``_apply_delete(job)`` must unplace ``job`` (and may move others).
    - ``placements`` must always reflect the live schedule.

    Subclasses must raise :class:`InfeasibleError` /
    :class:`UnderallocationError` *before* corrupting state, or restore
    state on failure, so callers can fall back to another scheduler.
    """

    def __init__(self, num_machines: int = 1) -> None:
        if num_machines < 1:
            raise ValueError("num_machines must be >= 1")
        self.num_machines = num_machines
        self.jobs: dict[JobId, Job] = {}
        self.ledger = CostLedger()

    # ------------------------------------------------------------------
    # subclass API
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def placements(self) -> Mapping[JobId, Placement]:
        """Live placement map (job id -> machine, slot)."""

    @abc.abstractmethod
    def _apply_insert(self, job: Job) -> None:
        """Place ``job`` into the schedule, moving others if necessary."""

    @abc.abstractmethod
    def _apply_delete(self, job: Job) -> None:
        """Remove ``job`` from the schedule, moving others if desired."""

    # ------------------------------------------------------------------
    # public online interface
    # ------------------------------------------------------------------
    def insert(self, job: Job) -> RequestCost:
        """Process an INSERTJOB request and return its measured cost."""
        if job.id in self.jobs:
            raise InvalidRequestError(f"job {job.id!r} already active")
        before = dict(self.placements)
        self.jobs[job.id] = job
        try:
            self._apply_insert(job)
        except Exception:
            self.jobs.pop(job.id, None)
            raise
        cost = diff_placements(
            before, self.placements,
            kind="insert", subject=job.id,
            n_active=len(self.jobs), max_span=self._max_span(),
        )
        self.ledger.record(cost)
        return cost

    def delete(self, job_id: JobId) -> RequestCost:
        """Process a DELETEJOB request and return its measured cost."""
        job = self.jobs.get(job_id)
        if job is None:
            raise InvalidRequestError(f"job {job_id!r} not active")
        before = dict(self.placements)
        n_active = len(self.jobs)
        max_span = self._max_span()
        self._apply_delete(job)
        del self.jobs[job_id]
        cost = diff_placements(
            before, self.placements,
            kind="delete", subject=job_id,
            n_active=n_active, max_span=max_span,
        )
        self.ledger.record(cost)
        return cost

    def apply(self, request: Request) -> RequestCost:
        """Dispatch a request object (insert or delete)."""
        if isinstance(request, InsertJob):
            return self.insert(request.job)
        if isinstance(request, DeleteJob):
            return self.delete(request.job_id)
        raise InvalidRequestError(f"unknown request: {request!r}")

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _max_span(self) -> int:
        return max((j.span for j in self.jobs.values()), default=1)

    @property
    def n_active(self) -> int:
        return len(self.jobs)

    def snapshot(self) -> dict[JobId, Placement]:
        """A copy of the current placements."""
        return dict(self.placements)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(m={self.num_machines}, "
                f"active={len(self.jobs)})")
