"""The reallocating-scheduler interface: per-request and batch-first.

Every scheduler in this library — the paper's reservation scheduler, the
naive pecking-order scheduler, EDF/LLF rebuilds, the per-request-optimal
matcher — implements :class:`ReallocatingScheduler`. The base class
standardizes cost measurement: subclasses implement ``_apply_insert`` /
``_apply_delete`` mutating their internal placement map, and the base
class diffs placements around each request to produce a
:class:`~repro.core.costs.RequestCost`. That keeps cost accounting
uniform and scheduler-independent, exactly as the paper's job-centered
cost model demands.

Two costing modes exist. The default snapshots the whole placement map
before each request and diffs after — O(n) per request, correct for any
subclass. Schedulers on the fast path set ``_sparse_costing = True`` and
call :meth:`_log_touch` before every placement mutation; the base class
then diffs only the touched jobs (:func:`~repro.core.costs.diff_touched`),
making cost accounting O(reallocations) per request — the paper's
O(log* n) — instead of O(n). The largest active span (the paper's
``Delta_i``) is likewise tracked incrementally instead of rescanned.

Batch contract
--------------
Real traffic arrives in bursts, so the public API is batch-first:
:meth:`ReallocatingScheduler.apply_batch` applies a whole
:class:`~repro.core.requests.Batch` under ONE batch context. Under the
default ``semantics="strict"`` requests are applied strictly in order
and every per-request :class:`RequestCost` is measured and recorded
exactly as sequential ``apply`` would — a committed batch leaves
placements, ledger totals, and max-span tracking bit-identical to
processing the same requests one at a time (the batch-equivalence
property, enforced by the test suite).
What the batch amortizes is bookkeeping, not semantics:

- one touched-placement log spans the burst, finalizing a single sparse
  net cost diff (:attr:`~repro.core.costs.BatchResult.net`) alongside
  the per-request breakdown;
- layers below the batch entry point suspend their own per-request cost
  finalization (diff + ledger record) — wrappers consume the raw
  touched logs instead;
- with ``atomic=True``, rollback switches from the per-request undo
  journal to batch-scoped snapshot-on-first-touch: a mid-batch failure
  restores the exact pre-batch state (all-or-nothing), and successful
  batches skip the per-mutation journal entirely.

Failure semantics: non-atomic batches stop at the first failing
request, roll that request back (per-request journal, as sequential
``apply`` does), and report the committed prefix; atomic batches roll
the whole burst back and leave the scheduler usable, as if the batch
had never been submitted. ``apply_batch`` never raises for scheduler
failures (:class:`~repro.core.exceptions.ReproError`) — it reports them
in the :class:`~repro.core.costs.BatchResult` so drivers can decide.

Flexible semantics
------------------
``apply_batch(..., semantics="flexible")`` relaxes the bit-identical
pin to a *bounds-equivalence* contract: the committed job table,
max-span tracking, and feasibility are identical to strict processing,
every per-request measured cost stays within the Theorem 1 bound
(strict mode is the bounded oracle), but placements and individual
ledger entries are free. The planner (:meth:`_plan_flexible`) exploits
that freedom without bypassing the per-request cost model:

- interior insert/delete pairs born and retired inside the burst are
  *elided* — neither touches the schedule; both still get (zero-cost)
  ledger entries so the ledger stays one entry per request;
- deletes of pre-existing jobs are coalesced up front (arrival order),
  so :meth:`_batch_prepare` plans the surviving inserts against the
  post-delete state — one target computation per touched window;
- surviving inserts run jointly, ordered by the stack's
  :meth:`_flexible_insert_order_key` (span-ascending for the
  reservation stacks, mirroring the trimming rebuild order), which
  avoids intra-burst displacement/move chains.

Every planned operation still executes through :meth:`insert` /
:meth:`delete` under the normal batch context, so atomic rollback, the
undo arena, sanitizer first-touch accounting, and the journal-coverage
contracts apply to flexible batches unchanged — a reordered valid
sequence is still a valid sequence, so Theorem 1's per-request bound
holds for every planned op. Per-request ledger entries are re-ordered
back to arrival positions at commit. A batch whose per-id op streams
are not protocol-valid against the pre-batch job set (duplicate
inserts, deletes of absent jobs) degrades to strict application, which
reports the error at its arrival position.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Iterable, Mapping

from .costs import BatchResult, CostLedger, RequestCost, diff_placements, diff_touched
from .exceptions import InvalidRequestError, ReproError
from .job import Job, JobId, Placement
from .requests import Batch, DeleteJob, InsertJob, Request

#: the worker flavors of ``apply_batch_sharded`` — defined once here
#: (the hook-point layer) and imported by the delegation layer, the
#: session backends, and the CLI's argparse choices
SHARD_WORKER_MODES = ("serial", "threads", "processes")

#: batch placement semantics — ``"strict"`` pins placements/ledger to
#: sequential equivalence; ``"flexible"`` keeps only the
#: bounds-equivalence contract (see the module docstring). Imported by
#: the session backends and the CLI's argparse choices.
BATCH_SEMANTICS = ("strict", "flexible")


def resolve_batch_semantics(semantics: str) -> str:
    """Validate a batch-semantics selector (single definition point)."""
    if semantics not in BATCH_SEMANTICS:
        raise InvalidRequestError(
            f"semantics must be one of {BATCH_SEMANTICS}, got {semantics!r}")
    return semantics


def resolve_shard_worker_mode(workers: str | None,
                              parallel: bool = False) -> str:
    """Fold the deprecated ``parallel`` flag into one validated mode.

    An explicit ``workers`` always wins; ``parallel=True`` alone is the
    legacy spelling of ``"threads"`` and raises a
    :class:`DeprecationWarning` pointing at ``workers=`` (the CLI's
    ``--shard-parallel`` alias warns the same way toward
    ``--shard-workers``). Every ``workers=`` entry point (delegation,
    session backend, execution plan) resolves through here, so a new
    mode needs adding in exactly one place.
    """
    if workers is None and parallel:
        import warnings

        warnings.warn(
            "parallel=True is deprecated; use workers='threads' "
            "(or workers='processes' for real parallelism)",
            DeprecationWarning, stacklevel=3,
        )
    mode = workers if workers is not None else (
        "threads" if parallel else "serial")
    if mode not in SHARD_WORKER_MODES:
        raise ValueError(
            f"workers must be one of {SHARD_WORKER_MODES}, got {mode!r}")
    return mode


class _BatchContext:
    """Per-batch bookkeeping held by a scheduler while a batch is open.

    ``touched`` is the batch-level first-touch placement log (pre-batch
    values), kept when the layer needs a net diff (batch entry point) or
    a placement restore (atomic). ``inserted``/``deleted`` record the
    batch's net job churn for atomic rollback. ``saved`` is free-form
    storage for subclass snapshots (inner-scheduler refs, balancer
    transaction logs, structure snapshots).
    """

    __slots__ = ("atomic", "top", "touched", "before", "inserted", "deleted",
                 "ledger_len", "saved", "ephemeral", "emit_touched")

    def __init__(self, *, atomic: bool, top: bool, sparse: bool,
                 placements: Mapping[JobId, Placement], ledger_len: int,
                 ephemeral: bool = False, emit_touched: bool = True,
                 needs_touched: bool = True) -> None:
        self.atomic = atomic
        self.top = top
        self.ephemeral = ephemeral
        self.emit_touched = emit_touched or top
        track = atomic and not ephemeral
        self.touched: dict[JobId, Placement | None] | None = (
            {} if sparse and (top or (track and needs_touched)) else None)
        self.before: dict[JobId, Placement] | None = (
            dict(placements) if (top and not sparse) else None)
        self.inserted: dict[JobId, Job] | None = {} if track else None
        self.deleted: dict[JobId, Job] | None = {} if track else None
        self.ledger_len = ledger_len
        self.saved: dict = {}

    def merge_touched(
        self, touched: Mapping[JobId, Placement | None] | None
    ) -> None:
        bt = self.touched
        if bt is None or not touched:
            return
        for job_id, old in touched.items():
            if job_id not in bt:
                bt[job_id] = old

    def note_insert(self, job: Job) -> None:
        if self.inserted is not None:
            self.inserted[job.id] = job

    def note_delete(self, job: Job) -> None:
        if self.deleted is None:
            return
        # A job inserted by this batch and deleted again is net-zero.
        if job.id in self.inserted:
            del self.inserted[job.id]
        else:
            self.deleted[job.id] = job


class ReallocatingScheduler(abc.ABC):
    """Base class for online schedulers that maintain a feasible schedule.

    Parameters
    ----------
    num_machines:
        Number of identical machines ``m``.

    Subclass contract
    -----------------
    - ``_apply_insert(job)`` must place ``job`` (and may move others).
    - ``_apply_delete(job)`` must unplace ``job`` (and may move others).
    - ``placements`` must always reflect the live schedule.
    - Sparse-costing subclasses (``_sparse_costing = True``) must call
      :meth:`_log_touch` (or :meth:`_merge_touched`) before mutating any
      job's placement, including wrapped sub-schedulers' moves.
    - Batch-aware wrappers override :meth:`_batch_begin` /
      :meth:`_batch_commit` / :meth:`_batch_restore` to propagate the
      batch context to inner schedulers, and
      :meth:`supports_atomic_batches` when the whole stack can restore
      its exact pre-batch state on abort.

    Subclasses must raise :class:`InfeasibleError` /
    :class:`UnderallocationError` *before* corrupting state, or restore
    state on failure, so callers can fall back to another scheduler.
    """

    #: subclasses that log touched placements (pre-request values) set
    #: this True to get O(reallocations) instead of O(n) cost diffing.
    _sparse_costing = False

    def __init__(self, num_machines: int = 1) -> None:
        if num_machines < 1:
            raise ValueError("num_machines must be >= 1")
        self.num_machines = num_machines
        self.jobs: dict[JobId, Job] = {}
        self.ledger = CostLedger()
        #: live touched-placement log (active only inside a request)
        self._touched: dict[JobId, Placement | None] | None = None
        #: touched log of the most recent completed request (sparse mode
        #: only) — wrappers fold it into their own log via _merge_touched
        self.last_touched: dict[JobId, Placement | None] | None = None
        #: spare touched dict recycled between requests (two-slot ring
        #: with ``last_touched``): consumers read ``last_touched``
        #: synchronously — before the next request on this scheduler —
        #: so the dict from two requests ago is free for reuse. Saves
        #: one dict allocation per request at every layer of a stack.
        self._touched_spare: dict[JobId, Placement | None] | None = None
        #: span -> active-job count, for O(1) amortized max-span tracking
        self._span_counts: dict[int, int] = {}
        self._max_span_cache = 1
        #: open batch context (None outside apply_batch)
        self._batch: _BatchContext | None = None

    # ------------------------------------------------------------------
    # subclass API
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def placements(self) -> Mapping[JobId, Placement]:
        """Live placement map (job id -> machine, slot)."""

    @abc.abstractmethod
    def _apply_insert(self, job: Job) -> None:
        """Place ``job`` into the schedule, moving others if necessary."""

    @abc.abstractmethod
    def _apply_delete(self, job: Job) -> None:
        """Remove ``job`` from the schedule, moving others if desired."""

    # ------------------------------------------------------------------
    # sparse costing support
    # ------------------------------------------------------------------
    def _log_touch(self, job_id: JobId) -> None:
        """Record ``job_id``'s pre-request placement (first touch wins)."""
        t = self._touched
        if t is not None and job_id not in t:
            t[job_id] = self.placements.get(job_id)

    def _merge_touched(
        self, touched: Mapping[JobId, Placement | None] | None
    ) -> None:
        """Fold a wrapped scheduler's touched log into this request's.

        Only valid when the wrapper's placements are coordinate-identical
        to the wrapped scheduler's (pass-through properties).
        """
        t = self._touched
        if t is None or touched is None:
            return
        if not t:
            t.update(touched)
            return
        for job_id, old in touched.items():
            if job_id not in t:
                t[job_id] = old

    def _touched_acquire(self) -> dict[JobId, Placement | None]:
        """An empty touched dict for the starting request (ring reuse)."""
        spare = self._touched_spare
        if spare is None:
            return {}
        self._touched_spare = None
        return spare

    def _touched_publish(
        self, touched: dict[JobId, Placement | None] | None
    ) -> None:
        """Expose ``touched`` as ``last_touched``, recycling the old one.

        The previous ``last_touched`` was consumed by every parent
        before this request began (the synchronous-merge contract), so
        it can be cleared and parked as the next request's dict.
        """
        prev = self.last_touched
        self.last_touched = touched
        if prev is not None and prev is not touched:
            prev.clear()
            self._touched_spare = prev

    def _touched_recycle(
        self, touched: dict[JobId, Placement | None] | None
    ) -> None:
        """Park a touched dict that will not be published (failure path)."""
        if touched is not None and self._touched_spare is None:
            touched.clear()
            self._touched_spare = touched

    # ------------------------------------------------------------------
    # public online interface
    # ------------------------------------------------------------------
    def insert(self, job: Job) -> RequestCost | None:
        """Process an INSERTJOB request and return its measured cost.

        Inside a batch, layers below the batch entry point suspend cost
        finalization and return None — parents read ``last_touched``.
        """
        if job.id in self.jobs:
            raise InvalidRequestError(f"job {job.id!r} already active")
        ctx = self._batch
        sparse = self._sparse_costing
        costed = ctx is None or ctx.top or not sparse
        before = dict(self.placements) if (costed and not sparse) else None
        if sparse and (ctx is None or ctx.emit_touched):
            self._touched = self._touched_acquire()
        self.jobs[job.id] = job
        try:
            self._apply_insert(job)
        except Exception:
            self.jobs.pop(job.id, None)
            touched, self._touched = self._touched, None
            if ctx is not None and ctx.atomic and touched:
                ctx.merge_touched(touched)  # the abort must see these
            self._touched_recycle(touched)
            raise
        self._span_add(job.span)
        if ctx is not None:
            ctx.note_insert(job)
        if sparse:
            touched, self._touched = self._touched, None
            self._touched_publish(touched)
            if ctx is not None:
                ctx.merge_touched(touched)
            if not costed:
                return None
            cost = diff_touched(
                touched, self.placements,
                kind="insert", subject=job.id,
                n_active=len(self.jobs), max_span=self._max_span_cache,
            )
        else:
            self.last_touched = None
            cost = diff_placements(
                before, self.placements,
                kind="insert", subject=job.id,
                n_active=len(self.jobs), max_span=self._max_span_cache,
            )
        self.ledger.record(cost)
        return cost

    def delete(self, job_id: JobId) -> RequestCost | None:
        """Process a DELETEJOB request and return its measured cost.

        Inside a batch, layers below the batch entry point suspend cost
        finalization and return None — parents read ``last_touched``.
        """
        job = self.jobs.get(job_id)
        if job is None:
            raise InvalidRequestError(f"job {job_id!r} not active")
        n_active = len(self.jobs)
        max_span = self._max_span_cache
        ctx = self._batch
        sparse = self._sparse_costing
        costed = ctx is None or ctx.top or not sparse
        before = dict(self.placements) if (costed and not sparse) else None
        if sparse and (ctx is None or ctx.emit_touched):
            self._touched = self._touched_acquire()
        try:
            self._apply_delete(job)
        except Exception:
            touched, self._touched = self._touched, None
            if ctx is not None and ctx.atomic and touched:
                ctx.merge_touched(touched)
            self._touched_recycle(touched)
            raise
        del self.jobs[job_id]
        self._span_remove(job.span)
        if ctx is not None:
            ctx.note_delete(job)
        if sparse:
            touched, self._touched = self._touched, None
            self._touched_publish(touched)
            if ctx is not None:
                ctx.merge_touched(touched)
            if not costed:
                return None
            cost = diff_touched(
                touched, self.placements,
                kind="delete", subject=job_id,
                n_active=n_active, max_span=max_span,
            )
        else:
            self.last_touched = None
            cost = diff_placements(
                before, self.placements,
                kind="delete", subject=job_id,
                n_active=n_active, max_span=max_span,
            )
        self.ledger.record(cost)
        return cost

    def apply(self, request: Request) -> RequestCost:
        """Dispatch a request object (insert or delete)."""
        if isinstance(request, InsertJob):
            return self.insert(request.job)
        if isinstance(request, DeleteJob):
            return self.delete(request.job_id)
        raise InvalidRequestError(f"unknown request: {request!r}")

    def apply_batch(
        self,
        requests: Batch | Iterable[Request],
        *,
        atomic: bool = False,
        semantics: str = "strict",
    ) -> BatchResult:
        """Apply a burst of requests under one batch context.

        Under ``semantics="strict"`` requests are applied strictly in
        order; per-request costs enter the ledger exactly as sequential
        :meth:`apply` would, and one batch-level net diff is finalized
        at commit. ``semantics="flexible"`` plans the burst jointly
        (deletes coalesced first, interior insert/delete pairs elided,
        surviving inserts reordered) under the bounds-equivalence
        contract. See the module docstring for both contracts.

        Parameters
        ----------
        atomic:
            All-or-nothing: a mid-batch failure restores the exact
            pre-batch state and leaves the scheduler usable. Requires
            :meth:`supports_atomic_batches`. Without it, a failure
            commits the preceding requests and rolls back only the
            failing one (sequential semantics).
        semantics:
            ``"strict"`` (default) or ``"flexible"``.
        """
        batch = requests if isinstance(requests, Batch) else Batch(requests)
        resolve_batch_semantics(semantics)
        if self._batch is not None:
            raise InvalidRequestError("apply_batch cannot be nested")
        if atomic and not self.supports_atomic_batches():
            raise InvalidRequestError(
                f"{type(self).__name__} does not support atomic batches"
            )
        if semantics == "flexible":
            plan = self._plan_flexible(batch)
            if plan is not None:
                deletes, inserts, elided = plan
                return self._apply_batch_flexible(
                    batch, atomic=atomic, deletes=deletes,
                    inserts=inserts, elided=elided,
                )
            # Protocol-invalid op streams degrade to strict application,
            # which reports the error at its arrival position.
        self._batch_begin(atomic=atomic, top=True)
        costs: list[RequestCost] = []
        error: ReproError | None = None
        failed_index: int | None = None
        try:
            self._batch_prepare(batch.insert_jobs)
            for i, request in enumerate(batch):
                try:
                    if isinstance(request, InsertJob):
                        costs.append(self.insert(request.job))
                    else:
                        costs.append(self.delete(request.job_id))
                except ReproError as exc:
                    error, failed_index = exc, i
                    break
        except BaseException:
            # Unexpected failure: restore what we can, then propagate.
            if atomic:
                self._batch_abort()
            else:
                self._batch_commit()
            raise
        if error is not None and atomic:
            self._batch_abort()
            return BatchResult(
                costs=costs, net=None, size=len(batch), atomic=True,
                failed=True, failed_index=failed_index,
                failure=f"{type(error).__name__}: {error}",
                rolled_back=True, error=error,
            )
        # Net diff over whatever committed — on a non-atomic failure the
        # touched log covers exactly the committed prefix (the failing
        # request was rolled back before its touches merged).
        ctx = self._batch
        if self._sparse_costing:
            net = diff_touched(
                ctx.touched, self.placements,
                kind="batch", subject="batch",
                n_active=len(self.jobs), max_span=self._max_span_cache,
            )
        else:
            net = diff_placements(
                ctx.before, self.placements,
                kind="batch", subject="batch",
                n_active=len(self.jobs), max_span=self._max_span_cache,
            )
        self._batch_commit()
        return BatchResult(
            costs=costs, net=net, size=len(batch), atomic=atomic,
            failed=error is not None, failed_index=failed_index,
            failure=(None if error is None
                     else f"{type(error).__name__}: {error}"),
            error=error,
        )

    # ------------------------------------------------------------------
    # flexible semantics (joint burst planning)
    # ------------------------------------------------------------------
    def _flexible_insert_order_key(self) -> "Callable[[Job], Any] | None":
        """Sort key over :class:`Job` for the flexible insert phase.

        None (the default) keeps arrival order. Reservation stacks
        return a span-ascending key — the same order the trimming
        rebuild uses — so a joint burst places small-span jobs before
        the large-span jobs that could displace them, avoiding
        intra-burst move chains. Wrappers delegate to their inner
        scheduler so the whole stack agrees on one order.
        """
        return None

    def _plan_flexible(
        self, batch: Batch
    ) -> "tuple[list[tuple[int, DeleteJob]], list[tuple[int, InsertJob]], list[tuple[int, Request]]] | None":
        """Joint plan for a flexible batch, or None to degrade to strict.

        Folds the batch into per-id op streams against the pre-batch job
        set. Interior insert/delete pairs (a job born and retired inside
        the burst) are elided; what survives is at most one leading
        delete of a pre-existing job and at most one trailing insert per
        id. Returns ``(deletes, inserts, elided)`` — each a list of
        ``(arrival_index, request)`` pairs; deletes keep arrival order,
        inserts are reordered by :meth:`_flexible_insert_order_key`.
        Returns None when any stream is protocol-invalid (duplicate
        insert, delete of an absent id), so the strict path can surface
        the error exactly as sequential processing would.
        """
        active = self.jobs
        #: id -> live within the planned timeline (absent = pre-batch state)
        state: dict[JobId, bool] = {}
        #: batch-born live inserts, by id (insertion-ordered)
        pending: dict[JobId, tuple[int, InsertJob]] = {}
        deletes: list[tuple[int, DeleteJob]] = []
        elided: list[tuple[int, Request]] = []
        for index, request in enumerate(batch):
            if isinstance(request, InsertJob):
                job_id = request.job.id
                if state.get(job_id, job_id in active):
                    return None  # insert of an already-active id
                state[job_id] = True
                pending[job_id] = (index, request)
            elif isinstance(request, DeleteJob):
                job_id = request.job_id
                if not state.get(job_id, job_id in active):
                    return None  # delete of an inactive id
                state[job_id] = False
                born = pending.pop(job_id, None)
                if born is not None:
                    elided.append(born)
                    elided.append((index, request))
                else:
                    deletes.append((index, request))
            else:
                return None  # unknown request kind: strict reports it
        inserts = sorted(pending.values())
        key = self._flexible_insert_order_key()
        if key is not None:
            # decorate-sort-undecorate: the key tuples compare directly,
            # with the arrival index as a deterministic tiebreak
            decorated = [(key(request.job), index, request)
                         for index, request in inserts]
            decorated.sort()
            inserts = [(index, request) for _, index, request in decorated]
        return deletes, inserts, elided

    def _elided_cost(self, request: Request) -> RequestCost:
        """Zero-cost ledger entry for an elided insert/delete pair.

        The pair never touched the schedule, so nothing was rescheduled
        or migrated; ``n_active``/``max_span`` carry the post-batch
        values (the entry does not correspond to a schedule state of its
        own).
        """
        if isinstance(request, InsertJob):
            kind, subject = "insert", request.job.id
        else:
            kind, subject = "delete", request.job_id
        return RequestCost(
            kind=kind, subject=subject,
            rescheduled=frozenset(), migrated=frozenset(),
            n_active=len(self.jobs), max_span=self._max_span_cache,
        )

    def _apply_batch_flexible(
        self,
        batch: Batch,
        *,
        atomic: bool,
        deletes: list[tuple[int, DeleteJob]],
        inserts: list[tuple[int, InsertJob]],
        elided: list[tuple[int, Request]],
    ) -> BatchResult:
        """Drive a planned flexible batch (deletes, then joint inserts).

        Every planned op runs through the normal :meth:`insert` /
        :meth:`delete` request path under the batch context, so rollback
        and cost accounting are untouched; :meth:`_batch_prepare` runs
        *between* the phases, planning the surviving inserts against the
        post-delete state. At commit the batch's ledger slice is
        permuted back to arrival order and elided requests receive
        zero-cost entries, keeping the ledger one-entry-per-request.
        """
        self._batch_begin(atomic=atomic, top=True)
        self._flexible_size_hint([request for _, request in deletes],
                                 [request.job for _, request in inserts])
        applied: list[RequestCost] = []
        planned: list[tuple[int, Request]] = [*deletes, *inserts]
        error: ReproError | None = None
        failed_index: int | None = None
        try:
            for index, request in deletes:
                try:
                    applied.append(self.delete(request.job_id))
                except ReproError as exc:
                    error, failed_index = exc, index
                    break
            if error is None:
                self._batch_prepare([item[1].job for item in inserts],
                                    flexible=True)
                for index, insert_request in inserts:
                    try:
                        applied.append(self.insert(insert_request.job))
                    except ReproError as exc:
                        error, failed_index = exc, index
                        break
        except BaseException:
            # Unexpected failure: restore what we can, then propagate.
            if atomic:
                self._batch_abort()
            else:
                self._batch_commit()
            raise
        if error is not None and atomic:
            self._batch_abort()
            return BatchResult(
                costs=applied, net=None, size=len(batch), atomic=True,
                failed=True, failed_index=failed_index,
                failure=f"{type(error).__name__}: {error}",
                rolled_back=True, error=error,
            )
        ctx = self._batch
        # Per-request ledger entries return to arrival order; elided
        # net-zero pairs commit as explicit zero-cost entries. On a
        # non-atomic failure only the applied planned prefix (plus the
        # no-op elided pairs) committed — failed_index names the failing
        # request's arrival position.
        by_index: dict[int, RequestCost] = {
            planned[k][0]: applied[k] for k in range(len(applied))
        }
        for index, request in elided:
            by_index[index] = self._elided_cost(request)
        costs = [by_index[i] for i in sorted(by_index)]
        self.ledger.entries[ctx.ledger_len:] = costs
        if self._sparse_costing:
            net = diff_touched(
                ctx.touched, self.placements,
                kind="batch", subject="batch",
                n_active=len(self.jobs), max_span=self._max_span_cache,
            )
        else:
            net = diff_placements(
                ctx.before, self.placements,
                kind="batch", subject="batch",
                n_active=len(self.jobs), max_span=self._max_span_cache,
            )
        self._batch_commit()
        return BatchResult(
            costs=costs, net=net, size=len(batch), atomic=atomic,
            failed=error is not None, failed_index=failed_index,
            failure=(None if error is None
                     else f"{type(error).__name__}: {error}"),
            error=error,
        )

    # ------------------------------------------------------------------
    # batch plumbing (overridden by wrapper schedulers)
    # ------------------------------------------------------------------
    def supports_atomic_batches(self) -> bool:
        """Whether this scheduler (stack) can restore pre-batch state."""
        return False

    # ------------------------------------------------------------------
    # sharded-drive hook points (overridden by delegating stacks)
    # ------------------------------------------------------------------
    def supports_sharded_batches(self) -> bool:
        """Whether bursts can be driven shard-first (per-machine workers).

        Schedulers that split work across per-machine sub-schedulers
        (the delegation layer and stacks wrapping it) override this
        together with :meth:`apply_batch_sharded`; the sharded drive
        backend in :mod:`repro.sim.session` keys off it.
        """
        return False

    def apply_batch_sharded(
        self,
        requests: Batch | Iterable[Request],
        *,
        workers: str | None = None,
        parallel: bool = False,
        semantics: str = "strict",
    ) -> BatchResult:
        """Apply a burst via per-shard workers (delegating stacks only).

        Semantics match :meth:`apply_batch` with ``atomic=True`` applied
        per burst: identical placements, ledger entries, and max-span
        tracking, with whole-burst rollback on any shard failure.
        ``workers`` selects the worker mode (``"serial"``, ``"threads"``,
        or ``"processes"`` — persistent worker processes holding the
        per-machine sub-schedulers across bursts); ``parallel=True`` is
        the deprecated spelling of ``workers="threads"``.
        ``semantics="flexible"`` plans the burst jointly first (the
        bounds-equivalence contract), with per-request costs reported
        at arrival positions exactly as :meth:`apply_batch` does.
        """
        raise InvalidRequestError(
            f"{type(self).__name__} does not support sharded batches"
        )

    def close_shard_workers(self) -> None:
        """Release process-resident shard workers, syncing state back.

        Delegating stacks running ``apply_batch_sharded`` with
        ``workers="processes"`` keep the per-machine sub-schedulers
        resident in worker processes between bursts; this pulls that
        state back into memory and ends the worker processes. No-op for
        every other scheduler and mode (any in-memory entry point also
        performs it implicitly).
        """

    def _batch_prepare(self, inserts: list[Job], *,
                       flexible: bool = False) -> None:
        """Hook: plan the batch from its insert jobs (grouping, memos).

        ``flexible=True`` marks a flexible batch's insert phase: the
        hook runs *after* the coalesced deletes, ``inserts`` is the
        planner's (reordered, elision-free) insert list, and the
        inserts will be applied in exactly this order with no
        intervening deletes — so plans may key off live post-delete
        state and may memoize per touched window.
        """

    def _flexible_size_hint(self, deletes: list[DeleteJob],
                            inserts: list[Job]) -> None:
        """Hook: announce a flexible batch's planned net size change.

        Called once per flexible batch, right after the batch context
        opens (so any state it changes is covered by the atomic
        snapshot) and before the coalesced deletes run. Size-adaptive
        layers (n*-trimming) may pre-size for the planned final job
        count instead of rebuilding at every mid-batch threshold
        crossing; placements are free under the flexible contract, so
        the skipped rebuilds only change them, never the job table,
        max-span, or feasibility.
        """

    #: pass-through wrappers whose placements restore entirely through a
    #: child's abort set this False to skip batch touched-log upkeep
    _batch_restore_needs_touched = True

    def _batch_begin(self, *, atomic: bool, top: bool,
                     ephemeral: bool = False,
                     emit_touched: bool = True) -> None:
        """Open a batch context. Wrappers extend this to snapshot their
        own state and begin their children with ``top=False``.

        ``ephemeral`` marks a scheduler *created inside* an open atomic
        batch (e.g. a trimming rebuild's fresh inner): an abort discards
        the object wholesale, so it skips rollback tracking entirely —
        no journal, no snapshots — and runs at full batch speed.
        ``emit_touched=False`` additionally suspends per-request touched
        logs, for children whose parent never reads ``last_touched``
        during the batch (rebuild inners log survivors wholesale).
        """
        self._batch = _BatchContext(
            atomic=atomic, top=top, sparse=self._sparse_costing,
            placements=self.placements, ledger_len=len(self.ledger.entries),
            ephemeral=ephemeral, emit_touched=emit_touched,
            needs_touched=self._batch_restore_needs_touched,
        )

    def _batch_commit(self) -> None:
        """Close the batch context, keeping all applied requests.
        Wrappers extend this to commit their (current) children."""
        self._batch = None

    def _batch_abort(self) -> None:
        """Restore the exact pre-batch state (atomic batches only).

        Base-class state (jobs, span tracking, ledger) is restored here;
        :meth:`_batch_restore` then restores subclass structures — it
        runs *after* the job set is back, so hooks may derive state from
        ``self.jobs``.
        """
        ctx = self._batch
        self._batch = None
        if ctx is None or not ctx.atomic:  # pragma: no cover - defensive
            raise InvalidRequestError("no atomic batch to abort")
        for job in ctx.inserted.values():
            del self.jobs[job.id]
            self._span_remove(job.span)
        for job in ctx.deleted.values():
            self.jobs[job.id] = job
            self._span_add(job.span)
        del self.ledger.entries[ctx.ledger_len:]
        self.last_touched = None
        self._batch_restore(ctx)

    def _batch_restore(self, ctx: _BatchContext) -> None:
        """Hook: restore subclass structures from ``ctx`` on abort."""

    def _restore_placement_map(
        self,
        placements: dict[JobId, Placement],
        touched: Mapping[JobId, Placement | None],
    ) -> None:
        """Rewind a placement dict using a batch-level touched log.

        Every job whose placement changed during the batch appears in
        ``touched`` with its pre-batch placement (None = had none), so
        the rewind is O(touched jobs).
        """
        for job_id in touched:
            placements.pop(job_id, None)
        for job_id, old in touched.items():
            if old is not None:
                placements[job_id] = old

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _span_add(self, span: int) -> None:
        counts = self._span_counts
        counts[span] = counts.get(span, 0) + 1
        if span > self._max_span_cache:
            self._max_span_cache = span

    def _span_remove(self, span: int) -> None:
        counts = self._span_counts
        n = counts[span] - 1
        if n:
            counts[span] = n
        else:
            del counts[span]
            if span == self._max_span_cache:
                self._max_span_cache = max(counts, default=1)

    def _max_span(self) -> int:
        """Largest active span, recomputed from scratch.

        Kept as the validation oracle for the incremental
        ``_max_span_cache``; no cost-recording path uses it anymore.
        """
        return max((j.span for j in self.jobs.values()), default=1)

    @property
    def n_active(self) -> int:
        return len(self.jobs)

    def snapshot(self) -> dict[JobId, Placement]:
        """A copy of the current placements."""
        return dict(self.placements)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"{type(self).__name__}(m={self.num_machines}, "
                f"active={len(self.jobs)})")
