"""Schedule snapshots and feasibility verification.

A *schedule* maps every active job to a :class:`~repro.core.job.Placement`
(machine, start slot). :func:`verify_schedule` checks the paper's
feasibility definition (Section 2): every job is placed within its
window on some machine, and no two jobs on the same machine overlap in
time. The simulation driver calls this after every request, so every
benchmark run doubles as a correctness audit.
"""

from __future__ import annotations

from typing import Mapping

from .exceptions import ValidationError
from .job import Job, JobId, Placement


def verify_schedule(
    jobs: Mapping[JobId, Job],
    placements: Mapping[JobId, Placement],
    num_machines: int,
    *,
    where: str = "schedule",
) -> None:
    """Raise :class:`ValidationError` unless the schedule is feasible.

    Checks, in order: every active job is placed; no phantom placements;
    machine indices valid; every job inside its window; no two jobs
    overlap on the same machine (size-aware).
    """
    missing = set(jobs) - set(placements)
    if missing:
        raise ValidationError(f"{where}: jobs without placement: {sorted(map(str, missing))[:5]}")
    phantom = set(placements) - set(jobs)
    if phantom:
        raise ValidationError(f"{where}: placements for unknown jobs: {sorted(map(str, phantom))[:5]}")

    occupied: dict[tuple[int, int], JobId] = {}
    for job_id, pl in placements.items():
        job = jobs[job_id]
        if not 0 <= pl.machine < num_machines:
            raise ValidationError(
                f"{where}: job {job_id!r} on machine {pl.machine} of {num_machines}"
            )
        if not job.admissible_start(pl.slot):
            raise ValidationError(
                f"{where}: job {job_id!r} at slot {pl.slot} outside window "
                f"[{job.release}, {job.deadline}) (size {job.size})"
            )
        for t in range(pl.slot, pl.slot + job.size):
            key = (pl.machine, t)
            if key in occupied:
                raise ValidationError(
                    f"{where}: machine {pl.machine} slot {t} double-booked by "
                    f"{occupied[key]!r} and {job_id!r}"
                )
            occupied[key] = job_id


def is_feasible_schedule(
    jobs: Mapping[JobId, Job],
    placements: Mapping[JobId, Placement],
    num_machines: int,
) -> bool:
    """Boolean form of :func:`verify_schedule`."""
    try:
        verify_schedule(jobs, placements, num_machines)
    except ValidationError:
        return False
    return True


def machine_loads(
    jobs: Mapping[JobId, Job],
    placements: Mapping[JobId, Placement],
    num_machines: int,
) -> list[int]:
    """Total occupied slots per machine (size-aware)."""
    loads = [0] * num_machines
    for job_id, pl in placements.items():
        loads[pl.machine] += jobs[job_id].size
    return loads


def format_schedule(
    jobs: Mapping[JobId, Job],
    placements: Mapping[JobId, Placement],
    num_machines: int,
    *,
    lo: int | None = None,
    hi: int | None = None,
) -> str:
    """ASCII rendering of a schedule — handy in examples and debugging.

    Each machine is one row; each slot shows the job id (first 3 chars)
    or ``.`` when idle.
    """
    if not placements:
        return "(empty schedule)"
    slots = [pl.slot for pl in placements.values()]
    ends = [pl.slot + jobs[j].size for j, pl in placements.items()]
    lo = min(slots) if lo is None else lo
    hi = max(ends) if hi is None else hi
    grid = [["." for _ in range(lo, hi)] for _ in range(num_machines)]
    for job_id, pl in placements.items():
        label = str(job_id)[:3].rjust(3, " ").strip() or "?"
        for t in range(pl.slot, pl.slot + jobs[job_id].size):
            if lo <= t < hi:
                grid[pl.machine][t - lo] = label
    header = f"slots [{lo}, {hi})"
    rows = []
    for mi, row in enumerate(grid):
        cells = " ".join(c.rjust(3) for c in row)
        rows.append(f"m{mi}: {cells}")
    return header + "\n" + "\n".join(rows)
