"""Exception hierarchy for the ``repro`` scheduling library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors.
The two interesting leaves are :class:`InfeasibleError` (the request
sequence itself admits no feasible schedule) and
:class:`UnderallocationError` (the instance is feasible but violates the
slack assumption a particular scheduler requires — e.g. the reservation
scheduler of Section 4 needs the instance to be 8-underallocated after
alignment).
"""

from __future__ import annotations

from .window import Window


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InvalidRequestError(ReproError):
    """A request is malformed or inconsistent with the current state.

    Examples: inserting a job id that is already active, deleting an
    unknown job id, a window with ``deadline <= release``, or a
    non-positive job size.
    """


class InfeasibleError(ReproError):
    """No feasible schedule exists for the current active job set.

    Raised by schedulers when they can prove infeasibility (e.g. a
    window ``W`` already contains ``m * |W|`` jobs whose windows nest
    inside ``W``), and by the offline feasibility checker.
    """


class UnderallocationError(ReproError):
    """The instance violates a scheduler's required slack (underallocation).

    The reservation scheduler of the paper assumes the instance is
    gamma-underallocated for a sufficiently large constant gamma; if a
    reservation or placement cannot be satisfied, the assumption was
    violated. The instance may still be *feasible* — use an exact
    scheduler (EDF rebuild, matching) for such instances.
    """

    def __init__(self, message: str, *, level: int | None = None,
                 window: Window | None = None,
                 detail: str | None = None) -> None:
        super().__init__(message)
        self.level = level
        self.window = window
        self.detail = detail


class WorkerCrashError(ReproError):
    """A process-resident shard worker died mid-burst.

    Raised (reported, never thrown across the pipe) by the
    process-based sharded backend when a worker process exits without
    answering: the coordinator rolls the whole burst back on the
    surviving shards, re-seeds a fresh worker process from the dead
    shard's last state snapshot plus its committed op-stream replay, and
    surfaces this error in the burst's
    :class:`~repro.core.costs.BatchResult`. The scheduler remains
    usable and equivalent to one that never saw the burst.
    """


class ValidationError(ReproError):
    """An internal invariant check failed (see ``reservation.validation``).

    This always indicates a bug in the library, never bad user input;
    it exists so the test suite and the simulation driver can run the
    schedulers with continuous self-checking.
    """
