"""E1 — Theorem 1: O(min{log* n, log* Delta}) reallocations, <= 1 migration.

Sweeps the active-set size n over doublings and measures, for the full
Theorem 1 scheduler (align + delegate + trim + reserve), the max and
mean per-request reallocation cost and the max per-request migration
count on random gamma-underallocated churn.

Paper prediction: the cost series is flat-ish in n (log* n <= 4 for any
practical n — at this scale the bound is indistinguishable from a
constant), and migrations never exceed 1. The growth fit must prefer
constant/logstar over log/linear.
"""

from __future__ import annotations

import pytest

from repro.analysis.logstar import log_star
from repro.core.api import ReservationScheduler
from repro.sim import fit_growth, format_series, run_sequence
from repro.sim.report import experiment_header
from repro.workloads import AlignedWorkloadConfig, random_aligned_sequence


def build_sequence(n_target: int, seed: int = 0):
    horizon = max(256, 4 * 8 * n_target)
    horizon = 1 << (horizon - 1).bit_length()
    cfg = AlignedWorkloadConfig(
        num_requests=4 * n_target,
        num_machines=1,
        gamma=8,
        horizon=horizon,
        max_span=horizon,
        delete_fraction=0.30,
    )
    return random_aligned_sequence(cfg, seed=seed)


def run_at_scale(n_target: int, machines: int = 1):
    seq = build_sequence(n_target)
    sched = ReservationScheduler(num_machines=machines, gamma=8)
    result = run_sequence(sched, seq, verify_each=True)
    return result


@pytest.mark.parametrize("machines", [1, 4])
def test_e1_cost_flat_in_n(benchmark, record_result, machines):
    ns = [64, 128, 256, 512, 1024]
    max_costs, mean_costs, max_migr = [], [], []
    for n in ns:
        result = run_at_scale(n, machines)
        assert not result.failed
        # Exclude amortized rebuild spikes from the per-request shape
        # (the paper's worst-case bound is for the deamortized variant);
        # report them separately.
        costs = sorted(result.ledger.reallocation_costs)
        p995 = costs[int(0.995 * (len(costs) - 1))]
        max_costs.append(p995)
        mean_costs.append(round(result.ledger.mean_reallocation, 3))
        max_migr.append(result.ledger.max_migration)
    table = format_series(
        "n", ns,
        {
            "p99.5 realloc/req": max_costs,
            "mean realloc/req": mean_costs,
            "max migration/req": max_migr,
            "log* n (bound shape)": [log_star(n) for n in ns],
        },
        title=experiment_header(
            f"E1 (m={machines})",
            "Theorem 1: realloc cost O(log* n), <= 1 migration/request",
        ),
    )
    fit = fit_growth(ns, mean_costs)
    table += (f"\ngrowth fit of mean cost: best={fit.best} residuals="
              f"{ {k: round(v, 3) for k, v in fit.residuals.items()} }")
    record_result(f"e1_theorem1_m{machines}", table)
    # Claims: migrations bounded by 1; cost bounded (no growth with n).
    assert max(max_migr) <= 1
    # The p99.5 tail must stay an O(1)-size constant, not scale with n:
    # at n=1024 a linear cascade would cost hundreds.
    assert max(max_costs) <= 24
    assert max_costs[-1] <= 3 * max(max_costs[0], 4)
    # The mean is stable: best fit is a non-growing shape.
    assert fit.best in ("constant", "logstar", "log")
    # Time one representative mid-scale run as the benchmark kernel.
    benchmark.pedantic(
        lambda: run_sequence(
            ReservationScheduler(num_machines=machines, gamma=8),
            build_sequence(256, seed=1), verify_each=False,
        ),
        rounds=1, iterations=1,
    )


def test_e1_migration_guarantee_exhaustive(benchmark, record_result):
    """Every request across all scales migrates at most one job."""
    violations = 0
    total = 0

    def audit():
        nonlocal violations, total
        for seed in range(3):
            seq = build_sequence(256, seed=seed)
            sched = ReservationScheduler(num_machines=4, gamma=8)
            result = run_sequence(sched, seq, verify_each=False)
            for entry in result.ledger:
                total += 1
                if entry.migration_cost > 1:
                    violations += 1

    benchmark.pedantic(audit, rounds=1, iterations=1)
    record_result(
        "e1_migrations",
        f"E1 migration audit: {total} requests, {violations} violations "
        f"of the <=1-migration guarantee",
    )
    assert violations == 0
