"""Shared fixtures for the experiment benchmark suite.

Every bench writes its experiment table to ``benchmarks/results/<exp>.txt``
(so the series survive pytest's output capture) and asserts the paper's
qualitative claim (growth shape / bound), so a failing bench means the
reproduction broke, not just that numbers drifted.
"""

from __future__ import annotations

import json
import os
import pathlib
import warnings

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """record_result(name, text): persist + echo an experiment table."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record


@pytest.fixture
def record_json(results_dir):
    """record_json(name, payload, *, section=None): perf-trajectory artifact.

    Writes ``benchmarks/results/<name>.json`` (ROADMAP observability
    item c). The artifact is committed per PR so later PRs can diff
    the experiment's headline metrics against history without
    rerunning it; keys are sorted so diffs stay minimal.

    ``section`` merges instead of overwriting: the payload lands under
    that top-level key and other sections are preserved, so a
    parametrized bench (per scenario, per machine count) accumulates
    one artifact across its parametrizations.

    Writes are atomic (temp file + ``os.replace``) so an interrupted
    bench run can never leave a truncated artifact behind, and a
    corrupt existing artifact is warned about and treated as empty
    rather than crashing the bench that would repair it.
    """

    def _record(name: str, payload: dict, *, section: str | None = None) -> None:
        path = results_dir / f"{name}.json"
        if section is not None:
            merged: dict = {}
            if path.exists():
                try:
                    merged = json.loads(path.read_text())
                except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                    warnings.warn(
                        f"existing bench artifact {path} is corrupt "
                        f"({exc}); overwriting with a fresh one",
                        stacklevel=2,
                    )
                    merged = {}
            merged[section] = payload
            payload = merged
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
        print(f"\n[perf trajectory written to {path}]")

    return _record
