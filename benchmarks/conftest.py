"""Shared fixtures for the experiment benchmark suite.

Every bench writes its experiment table to ``benchmarks/results/<exp>.txt``
(so the series survive pytest's output capture) and asserts the paper's
qualitative claim (growth shape / bound), so a failing bench means the
reproduction broke, not just that numbers drifted.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """record_result(name, text): persist + echo an experiment table."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _record
