"""E15 — end-to-end scenario regression: the paper's motivating settings.

Not a theorem — a deployment-shaped regression pin. Runs the
appointment-book and cluster-trace scenarios (the two applications the
paper's introduction motivates) through the Theorem 1 scheduler and the
EDF rebuild baseline, and asserts the qualitative story: the
reservation scheduler's total and per-request reallocations stay far
below EDF's, and its migration guarantee holds. Numbers land in
benchmarks/results/ so behavioural drift across library versions is
visible in review diffs.
"""

from __future__ import annotations

from repro.baselines import EDFRebuildScheduler
from repro.core.api import ReservationScheduler
from repro.sim import format_table, run_comparison
from repro.sim.report import experiment_header
from repro.workloads import appointment_book_sequence, cluster_trace_sequence


def test_e15_appointment_book(benchmark, record_result):
    seq = appointment_book_sequence(requests=400, seed=42)

    def run():
        return run_comparison({
            "reservation": lambda: ReservationScheduler(1, gamma=8),
            "edf": lambda: EDFRebuildScheduler(1),
        }, seq)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, r.ledger.total_reallocations,
             round(r.ledger.mean_reallocation, 3),
             r.ledger.percentile_reallocation(99)]
            for name, r in results.items()]
    record_result(
        "e15a_appointments",
        format_table(["scheduler", "total rescheduled", "mean/req", "p99"],
                     rows,
                     title=experiment_header(
                         "E15a", "doctor's office: patients rescheduled")),
    )
    res, edf = results["reservation"].ledger, results["edf"].ledger
    assert res.total_reallocations * 5 <= edf.total_reallocations
    assert res.total_migrations == 0


def test_e15_cluster_trace(benchmark, record_result):
    m = 4
    seq = cluster_trace_sequence(num_machines=m, requests=600, seed=7)

    def run():
        return run_comparison({
            "reservation": lambda: ReservationScheduler(m, gamma=8),
            "edf": lambda: EDFRebuildScheduler(m),
        }, seq)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, r.ledger.total_migrations, r.ledger.max_migration,
             round(r.ledger.mean_reallocation, 3)]
            for name, r in results.items()]
    record_result(
        "e15b_cluster",
        format_table(["scheduler", "total migrations", "max migr/req",
                      "mean realloc/req"],
                     rows,
                     title=experiment_header(
                         "E15b", f"cluster trace on m={m} machines")),
    )
    res, edf = results["reservation"].ledger, results["edf"].ledger
    assert res.max_migration <= 1
    assert edf.max_migration > 1  # EDF migrates freely
    assert res.total_migrations < edf.total_migrations
