"""E5 — Lemma 12: Omega(s^2) total reallocations without underallocation.

The staircase toggle: eta standing jobs with windows [j, j+2), a probe
alternately pinning slot 0 and slot eta. Every toggle flips all eta jobs
between their early and late slots, so total cost grows quadratically in
the sequence length — for *any* scheduler, which we demonstrate on both
EDF and the per-request-optimal matcher.
"""

from __future__ import annotations

from repro.adversaries import ReallocLowerBound, staircase_toggle_sequence
from repro.baselines import EDFRebuildScheduler, MinChangeMatchingScheduler
from repro.sim import fit_growth, format_series, run_sequence
from repro.sim.report import experiment_header


def staircase_total(scheduler_factory, eta: int) -> tuple[int, int]:
    seq = staircase_toggle_sequence(eta)
    sched = scheduler_factory()
    result = run_sequence(sched, seq, verify_each=False)
    return len(seq), result.ledger.total_reallocations


def test_e5_quadratic_total_cost(benchmark, record_result):
    etas = [4, 8, 16, 32, 64]
    ss, edf_totals, bounds = [], [], []
    for eta in etas:
        s, total = staircase_total(lambda: EDFRebuildScheduler(1), eta)
        ss.append(s)
        edf_totals.append(total)
        bounds.append(ReallocLowerBound(eta, eta).min_total_reallocations)
    # the matcher is slow; probe a shorter sweep
    match_totals = []
    for eta in etas[:3]:
        _, total = staircase_total(lambda: MinChangeMatchingScheduler(1), eta)
        match_totals.append(total)

    table = format_series(
        "s (requests)", ss,
        {
            "EDF total reallocations": edf_totals,
            "Lemma 12 bound": bounds,
            "min-change total (first 3)": match_totals + ["-"] * (len(etas) - 3),
        },
        title=experiment_header(
            "E5", "Lemma 12: staircase toggle forces Theta(s^2) total cost"
        ),
    )
    fit = fit_growth(ss, edf_totals)
    table += f"\ngrowth fit of EDF total: best={fit.best}"
    record_result("e5_realloc_lb", table)

    for total, bound in zip(edf_totals, bounds):
        assert total >= bound
    for total, bound in zip(match_totals, bounds):
        assert total >= bound
    assert fit.best == "quadratic"
    # doubling eta ~ doubles s and ~quadruples cost
    assert edf_totals[-1] >= 3.2 * edf_totals[-2]
    benchmark.pedantic(
        lambda: staircase_total(lambda: EDFRebuildScheduler(1), 32),
        rounds=1, iterations=1,
    )


def test_e5_underallocated_staircase_is_cheap(benchmark, record_result):
    """Contrast: give the staircase gamma=8 slack (windows [j, j+16))
    and the reservation scheduler handles the same toggle pattern with
    O(1) cost per request — quantifying the value of underallocation."""
    from repro.core.api import ReservationScheduler
    from repro.core.requests import RequestSequence

    eta = 64
    seq = RequestSequence()
    for j in range(eta):
        seq.insert(f"stair{j}", j, j + 16)
    for t in range(eta):
        if t % 2 == 0:
            seq.insert(f"probe{t}", 0, 8)
        else:
            seq.insert(f"probe{t}", eta, eta + 8)
        seq.delete(f"probe{t}")

    def run():
        return run_sequence(ReservationScheduler(1, gamma=8), seq,
                            verify_each=True)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "e5b_slack_contrast",
        experiment_header("E5b", "the same toggle with slack is O(1)/request")
        + f"\ntotal reallocations: {result.ledger.total_reallocations} over "
        f"{len(seq)} requests (max/request: {result.ledger.max_reallocation})",
    )
    assert result.ledger.max_reallocation <= 8
    assert result.ledger.total_reallocations <= 2 * len(seq)
