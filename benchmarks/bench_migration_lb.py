"""E4 — Lemma 11: Omega(s) migrations without underallocation.

Runs the adaptive adversary (insert 2m span-2 jobs / delete the first
m/2 machines' jobs / insert m span-1 jobs / delete all) against exact
schedulers and checks the measured migrations against the paper's s/12
bound. The total must grow *linearly* in the request count s — the
shape that makes per-request migration cost Omega(1).
"""

from __future__ import annotations

import pytest

from repro.adversaries import run_migration_adversary
from repro.baselines import EDFRebuildScheduler, MinChangeMatchingScheduler
from repro.sim import fit_growth, format_series
from repro.sim.report import experiment_header


@pytest.mark.parametrize("m", [2, 4, 8])
def test_e4_migrations_linear_in_s(benchmark, record_result, m):
    rounds_list = [2, 4, 8, 16]
    ss, migrations, bounds = [], [], []
    for rounds in rounds_list:
        result = run_migration_adversary(EDFRebuildScheduler(m), rounds)
        ss.append(result.requests)
        migrations.append(result.total_migrations)
        bounds.append(result.lower_bound)
    table = format_series(
        "s (requests)", ss,
        {
            "measured migrations (EDF)": migrations,
            "paper bound s/12": [round(b, 1) for b in bounds],
            "m/2 per round": [r * m // 2 for r in rounds_list],
        },
        title=experiment_header(
            f"E4 (m={m})", "Lemma 11: any scheduler pays Omega(s) migrations"
        ),
    )
    fit = fit_growth(ss, migrations)
    table += f"\ngrowth fit: best={fit.best}"
    record_result(f"e4_migration_lb_m{m}", table)
    # The bound: at least m/2 migrations per round == s/12.
    for mig, bound in zip(migrations, bounds):
        assert mig >= bound
    assert fit.best == "linear"
    benchmark.pedantic(
        lambda: run_migration_adversary(EDFRebuildScheduler(m), 4),
        rounds=1, iterations=1,
    )


def test_e4_optimal_scheduler_also_pays(benchmark, record_result):
    """The bound binds the per-request-optimal scheduler too."""
    result = benchmark.pedantic(
        lambda: run_migration_adversary(MinChangeMatchingScheduler(2), 6),
        rounds=1, iterations=1,
    )
    record_result(
        "e4_optimal_also_pays",
        experiment_header("E4b", "Lemma 11 vs the min-change matcher")
        + f"\nrequests={result.requests} migrations={result.total_migrations} "
        f"bound={result.lower_bound:.1f}",
    )
    assert result.total_migrations >= result.rounds  # m/2 = 1 per round
