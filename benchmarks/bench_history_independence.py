"""E11 — Observation 7: fulfilled reservations are history independent.

The paper: "Which reservations in which intervals are fulfilled and
which are waitlisted is history independent. The actual placement of the
jobs is not." Our implementation makes the first half true *by
construction* (fulfillment is a pure function of demand and allowance);
this experiment verifies it end to end: drive the same final active set
through many different histories (permuted insert orders, with decoy
jobs inserted and deleted along the way) and compare

- the fulfilled-reservation multiset per interval — must be identical
  across histories (for single-level instances, where the allowance is
  the full interval); and
- the job placements — expected to differ (we report the count of
  differing histories as a sanity check that the test has power).
"""

from __future__ import annotations

import numpy as np

from repro.core import Job, Window
from repro.reservation import AlignedReservationScheduler
from repro.sim.report import experiment_header


def fulfilled_signature(sched: AlignedReservationScheduler):
    sig = {}
    for level, table in sched.intervals.items():
        for idx, iv in table.items():
            entries = tuple(sorted(
                ((w.release, w.deadline), c)
                for w, c in iv.target_fulfilled().items() if c > 0
            ))
            sig[(level, idx)] = entries
    return sig


def build_history(seed: int):
    """Same final active set (level-1 jobs only), scrambled history."""
    rng = np.random.default_rng(seed)
    final_jobs = [Job(f"j{i}", Window(64 * (i % 4), 64 * (i % 4) + 64))
                  for i in range(10)]
    decoys = [Job(f"d{i}", Window(256, 512)) for i in range(3)]
    sched = AlignedReservationScheduler()
    order = list(final_jobs)
    rng.shuffle(order)
    cut = int(rng.integers(0, len(order) + 1))
    for job in order[:cut]:
        sched.insert(job)
    for d in decoys:
        sched.insert(d)
    for job in order[cut:]:
        sched.insert(job)
    for d in decoys:
        sched.delete(d.id)
    return sched


def test_e11_fulfillment_history_independent(benchmark, record_result):
    signatures = []
    placements = []

    def sweep():
        for seed in range(12):
            sched = build_history(seed)
            signatures.append(fulfilled_signature(sched))
            placements.append(tuple(sorted(
                (str(k), v.slot) for k, v in sched.placements.items()
            )))

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Compare fulfilled signatures on the intervals common to all runs
    # (decoy intervals may or may not stay materialized).
    common = set(signatures[0])
    for sig in signatures[1:]:
        common &= set(sig)
    mismatches = 0
    for key in common:
        baseline = signatures[0][key]
        for sig in signatures[1:]:
            if sig[key] != baseline:
                mismatches += 1
    distinct_placements = len(set(placements))
    record_result(
        "e11_history_independence",
        experiment_header("E11", "Observation 7: fulfillment history-independent")
        + f"\nhistories: 12; common intervals: {len(common)}; "
        f"fulfillment mismatches: {mismatches}"
        + f"\ndistinct job-placement outcomes: {distinct_placements} "
        "(placements are NOT history independent, as the paper notes)",
    )
    assert len(common) >= 8  # the 4 level-1 windows' intervals persist
    assert mismatches == 0
    assert distinct_placements >= 2
