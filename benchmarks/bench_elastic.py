"""E13 — extension: the cost of adding/dropping machines (Section 7).

The paper's open question: what if machines can be added or dropped?
Our elastic delegation layer re-establishes the per-window balance
invariant with the minimum number of migrations. This bench measures
that cost as a function of load n and machine count m.

Expected shapes (argued in ``multimachine/elastic.py``):
- add_machine at m machines, n jobs: ~n/(m+1) migrations (linear in n);
- remove_machine: ~n/m migrations (linear in n);
- regular insert/delete guarantees are unaffected afterwards (<= 1
  migration per request).

The linear-in-n shape is the finding: machine elasticity is inherently
a bulk-reallocation event, unlike job churn.
"""

from __future__ import annotations

from repro.core import Job, Window
from repro.multimachine import ElasticScheduler
from repro.reservation import AlignedReservationScheduler
from repro.sim import fit_growth, format_series
from repro.sim.report import experiment_header


def loaded_scheduler(n: int, m: int) -> ElasticScheduler:
    s = ElasticScheduler(m, lambda: AlignedReservationScheduler())
    spans = [64, 128, 256, 1024]
    for i in range(n):
        span = spans[i % len(spans)]
        start = (i % 4) * 1024
        s.insert(Job(i, Window(start, start + span) if span != 1024
                     else Window(start, start + 1024)))
    return s


def test_e13_elasticity_cost_linear_in_n(benchmark, record_result):
    m = 4
    ns = [32, 64, 128, 256]
    add_costs, remove_costs = [], []

    def sweep():
        for n in ns:
            s = loaded_scheduler(n, m)
            add_costs.append(s.add_machine().migration_cost)
            s2 = loaded_scheduler(n, m)
            remove_costs.append(s2.remove_machine(0).migration_cost)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_series(
        "n", ns,
        {
            f"add_machine migrations (m={m})": add_costs,
            f"remove_machine migrations (m={m})": remove_costs,
            "n/(m+1)": [n // (m + 1) for n in ns],
            "n/m": [n // m for n in ns],
        },
        title=experiment_header(
            "E13", "extension: machine elasticity costs Theta(n/m) "
            "migrations per event (Section 7 open question)",
        ),
    )
    add_fit = fit_growth(ns, add_costs)
    table += f"\nadd_machine growth in n: {add_fit.best}"
    record_result("e13_elastic", table)
    assert add_fit.best == "linear"
    for n, c in zip(ns, add_costs):
        assert c <= n // (m + 1) + 8  # minimal-move rebalance, small slop
    for n, c in zip(ns, remove_costs):
        assert n // m - 4 <= c <= n // m + 8


def test_e13_guarantees_survive_elasticity(benchmark, record_result):
    def run():
        s = loaded_scheduler(64, 2)
        s.add_machine()
        s.add_machine()
        s.remove_machine(1)
        worst = 0
        for i in range(64, 96):
            worst = max(worst, s.insert(
                Job(i, Window(0, 1024))).migration_cost)
        for i in range(40):
            worst = max(worst, s.delete(i).migration_cost)
        s.check_balance()
        return worst

    worst = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "e13b_guarantees",
        experiment_header("E13b", "Section 3 guarantees survive elasticity")
        + f"\nworst migration count over 72 post-elasticity requests: {worst}",
    )
    assert worst <= 1
