"""E8 — Section 3: the multi-machine reduction's invariants at scale.

Sweeps the machine count m and verifies, over full churn runs on the
Theorem 1 scheduler:

- at most one migration per request (and inserts never migrate);
- the per-window floor/ceil balance invariant holds after every request;
- every machine's sub-instance stays feasible (verified implicitly by
  the per-request feasibility check).

Reports migrations per delete — the paper's reduction migrates only on
deletes, so inserts must show zero.
"""

from __future__ import annotations

import pytest

from repro.core.api import ReservationScheduler
from repro.sim import format_series, run_sequence
from repro.sim.report import experiment_header
from repro.workloads import AlignedWorkloadConfig, random_aligned_sequence


@pytest.mark.parametrize("seed", [0, 1])
def test_e8_delegation_invariants(benchmark, record_result, seed):
    ms = [1, 2, 4, 8, 16]
    max_migr, insert_migr, delete_migr_rate, balance_ok = [], [], [], []

    def sweep():
        for m in ms:
            cfg = AlignedWorkloadConfig(
                num_requests=400, num_machines=m, gamma=8,
                horizon=1 << 11, max_span=1 << 11, delete_fraction=0.4,
            )
            seq = random_aligned_sequence(cfg, seed=seed)
            sched = ReservationScheduler(num_machines=m, gamma=8)
            result = run_sequence(
                sched, seq,
                validate_each=lambda s: s.check_balance(),
            )
            assert not result.failed
            ins = [e for e in result.ledger if e.kind == "insert"]
            dels = [e for e in result.ledger if e.kind == "delete"]
            max_migr.append(result.ledger.max_migration)
            insert_migr.append(sum(e.migration_cost for e in ins))
            rate = (sum(e.migration_cost for e in dels) / len(dels)
                    if dels else 0.0)
            delete_migr_rate.append(round(rate, 3))
            balance_ok.append("yes")

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_series(
        "m", ms,
        {
            "max migrations/request": max_migr,
            "insert migrations (total)": insert_migr,
            "migrations per delete": delete_migr_rate,
            "balance invariant": balance_ok,
        },
        title=experiment_header(
            f"E8 (seed={seed})",
            "Section 3: round-robin delegation, <= 1 migration, only on deletes",
        ),
    )
    record_result(f"e8_multimachine_seed{seed}", table)
    assert max(max_migr) <= 1
    assert max(insert_migr) == 0
