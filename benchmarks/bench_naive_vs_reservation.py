"""E2 — Lemma 4 vs Section 4: log Delta cascades vs log* Delta.

Two measurements, matching the two claims:

1. **Naive pecking-order worst case (Lemma 4).** On the tight "pyramid"
   instance — windows [0, 2^j) holding exactly 2^(j-1) jobs each, so
   every prefix window is exactly full — the final span-1 insertion
   cascades through every span: cost ~ log2(Delta). The series must fit
   `log`, not `constant`.

2. **Reservation scheduler worst case (Section 4).** On maximally
   contended 8-underallocated workloads with max span Delta, the max
   per-request cost stays bounded by a small constant times
   log*(Delta) — flat at any simulatable scale.

The two use different workloads by necessity: Lemma 4 needs only
feasibility, while the reservation guarantee requires underallocation —
that asymmetry is itself one of the paper's points.
"""

from __future__ import annotations

import pytest

from repro.analysis.logstar import log_star
from repro.baselines import NaivePeckingScheduler
from repro.core import Job, Window
from repro.reservation import AlignedReservationScheduler
from repro.sim import fit_growth, format_series, run_sequence
from repro.sim.report import experiment_header
from repro.workloads import AlignedWorkloadConfig, random_aligned_sequence


def pyramid_probe_cost(k: int) -> int:
    """Insert the tight pyramid for Delta = 2^k; return the probe cost.

    Jobs: 2^(j-1) jobs with window [0, 2^j) for j = k..1, inserted
    large-to-small, then one span-1 probe — its cascade must displace
    one job per span level.
    """
    sched = NaivePeckingScheduler()
    uid = 0
    for j in range(k, 0, -1):
        for _ in range(1 << (j - 1)):
            sched.insert(Job(f"p{uid}", Window(0, 1 << j)))
            uid += 1
    cost = sched.insert(Job("probe", Window(0, 1)))
    return cost.reallocation_cost


def reservation_max_cost(delta_log: int, seed: int = 0) -> int:
    horizon = 1 << delta_log
    cfg = AlignedWorkloadConfig(
        num_requests=600, gamma=8, horizon=horizon, max_span=horizon,
        delete_fraction=0.3,
    )
    seq = random_aligned_sequence(cfg, seed=seed)
    sched = AlignedReservationScheduler()
    result = run_sequence(sched, seq, verify_each=False)
    return result.ledger.max_reallocation


def test_e2_naive_cascade_grows_logarithmically(benchmark, record_result):
    ks = list(range(3, 13))
    costs = [pyramid_probe_cost(k) for k in ks]
    deltas = [1 << k for k in ks]
    fit = fit_growth(deltas, costs)
    table = format_series(
        "Delta", deltas,
        {"naive probe cost": costs, "log2 Delta": ks},
        title=experiment_header(
            "E2a", "Lemma 4: naive pecking-order cascades cost Theta(log Delta)"
        ),
    )
    table += f"\ngrowth fit: best={fit.best}"
    record_result("e2a_naive_log_cascade", table)
    # The cascade displaces exactly one job per span level: cost == k.
    assert costs == ks
    assert fit.best == "log"
    benchmark.pedantic(lambda: pyramid_probe_cost(10), rounds=1, iterations=1)


def test_e2_reservation_stays_flat(benchmark, record_result):
    delta_logs = [6, 8, 10, 12, 14]
    costs = [max(reservation_max_cost(dl, seed=s) for s in range(2))
             for dl in delta_logs]
    deltas = [1 << dl for dl in delta_logs]
    table = format_series(
        "Delta", deltas,
        {
            "reservation max cost": costs,
            "log* Delta": [log_star(d) for d in deltas],
            "log2 Delta (naive shape)": delta_logs,
        },
        title=experiment_header(
            "E2b", "Section 4: reservation scheduler cost ~ log* Delta (flat)"
        ),
    )
    fit = fit_growth(deltas, costs)
    table += f"\ngrowth fit: best={fit.best}"
    record_result("e2b_reservation_flat", table)
    # Bounded by a small constant; in particular beats log2(Delta)'s
    # growth: doubling Delta 256x must not double the cost.
    assert max(costs) <= 12
    assert costs[-1] <= costs[0] + 6
    assert fit.best in ("constant", "logstar", "log")
    benchmark.pedantic(lambda: reservation_max_cost(10, seed=9),
                       rounds=1, iterations=1)


def test_e2_head_to_head_on_underallocated(benchmark, record_result):
    """Both schedulers on the same 8-underallocated churn: both cheap,
    but only the reservation scheduler carries a worst-case guarantee."""
    cfg = AlignedWorkloadConfig(
        num_requests=500, gamma=8, horizon=1 << 12, max_span=1 << 12,
        delete_fraction=0.35,
    )
    seq = random_aligned_sequence(cfg, seed=3)

    def run_both():
        naive = run_sequence(NaivePeckingScheduler(), seq, verify_each=False)
        res = run_sequence(AlignedReservationScheduler(), seq, verify_each=False)
        return naive, res

    naive, res = benchmark.pedantic(run_both, rounds=1, iterations=1)
    table = (
        experiment_header("E2c", "same-workload comparison (8-underallocated)")
        + f"\nnaive:       max={naive.ledger.max_reallocation} "
        f"mean={naive.ledger.mean_reallocation:.3f}"
        + f"\nreservation: max={res.ledger.max_reallocation} "
        f"mean={res.ledger.mean_reallocation:.3f}"
    )
    record_result("e2c_head_to_head", table)
    assert naive.ledger.max_reallocation <= 16
    assert res.ledger.max_reallocation <= 16
