"""E9 — ablation: the empirical underallocation threshold gamma*.

The paper proves Theorem 1 "for a sufficiently large constant gamma"
(Lemma 8 uses 8 for the aligned single-machine core; the reductions
multiply it to ~192) and explicitly leaves optimizing it open
("How much can this constant be improved?"). This ablation measures the
empirical threshold: for each workload slack gamma_w, run heavy aligned
churn through the raw reservation scheduler and record whether it ever
hits an UnderallocationError.

Expected shape: failures at/below a small slack (the reservation
overhead — 2 reservations/job plus baselines — must fit), success well
before the paper's worst-case constants. The measured gamma* quantifies
how pessimistic the paper's constant is.
"""

from __future__ import annotations

from repro.reservation import AlignedReservationScheduler
from repro.sim import format_series, run_sequence
from repro.sim.report import experiment_header
from repro.workloads import AlignedWorkloadConfig, random_aligned_sequence


def survives(gamma_w: int, seed: int) -> bool:
    cfg = AlignedWorkloadConfig(
        num_requests=400, gamma=gamma_w, horizon=1 << 10, max_span=1 << 10,
        delete_fraction=0.30,
    )
    seq = random_aligned_sequence(cfg, seed=seed)
    result = run_sequence(
        AlignedReservationScheduler(), seq,
        verify_each=False, stop_on_error=False,
    )
    return not result.failed


def test_e9_empirical_gamma_threshold(benchmark, record_result):
    gammas = [1, 2, 3, 4, 6, 8, 12, 16]
    seeds = range(4)
    survival = []

    def sweep():
        for g in gammas:
            ok = sum(1 for s in seeds if survives(g, s))
            survival.append(f"{ok}/{len(list(seeds))}")

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_series(
        "workload gamma", gammas,
        {"survival (runs without UnderallocationError)": survival},
        title=experiment_header(
            "E9", "ablation: empirical slack threshold of the reservation "
            "scheduler (paper's proof needs gamma = 8 aligned; Theorem 1 "
            "composes to ~192)",
        ),
    )
    # first gamma with full survival
    full = next((g for g, s in zip(gammas, survival)
                 if s == f"{len(list(seeds))}/{len(list(seeds))}"), None)
    table += f"\nempirical gamma* (full survival): {full}"
    record_result("e9_gamma_threshold", table)
    # The scheduler must survive at the paper's Lemma 8 constant...
    assert survival[gammas.index(8)] == "4/4"
    # ...and the measured threshold must be far below the composed ~192.
    assert full is not None and full <= 8


def pyramid_survives(gamma_w: int, horizon_log: int = 9) -> bool:
    """Adversarial probe: nested windows each filled to 1/gamma_w of
    capacity (every prefix window simultaneously at its density budget),
    then churn at every span level. Far harsher than random churn."""
    from repro.core import Job, Window
    from repro.core.exceptions import ReproError

    sched = AlignedReservationScheduler()
    uid = 0
    per_span: dict[int, list[str]] = {}
    try:
        for j in range(horizon_log, 0, -1):
            span = 1 << j
            count = max(1, (span // 2) // gamma_w)
            ids = []
            for _ in range(count):
                sched.insert(Job(f"p{uid}", Window(0, span)))
                ids.append(f"p{uid}")
                uid += 1
            per_span[span] = ids
        # churn: delete and reinsert one job per span level, repeatedly
        for _round in range(6):
            for span, ids in per_span.items():
                victim = ids.pop(0)
                sched.delete(victim)
                sched.insert(Job(f"p{uid}", Window(0, span)))
                ids.append(f"p{uid}")
                uid += 1
    except ReproError:
        return False
    return True


def test_e9_adversarial_pyramid_threshold(benchmark, record_result):
    gammas = [1, 2, 3, 4, 6, 8, 12, 16]
    outcomes = []
    benchmark.pedantic(
        lambda: outcomes.extend(
            "survives" if pyramid_survives(g) else "FAILS" for g in gammas
        ),
        rounds=1, iterations=1,
    )
    table = format_series(
        "workload gamma", gammas,
        {"nested-pyramid churn": outcomes},
        title=experiment_header(
            "E9b", "adversarial ablation: every prefix window at its exact "
            "density budget",
        ),
    )
    first_ok = next((g for g, o in zip(gammas, outcomes) if o == "survives"),
                    None)
    table += f"\nempirical adversarial gamma*: {first_ok}"
    record_result("e9b_adversarial_threshold", table)
    # Lemma 8's constant must suffice even adversarially...
    assert outcomes[gammas.index(8)] == "survives"
    # ...and survival must be monotone in slack from the threshold on.
    idx = gammas.index(first_ok)
    assert all(o == "survives" for o in outcomes[idx:])
