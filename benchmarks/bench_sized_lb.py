"""E6 — Observation 13: mixed sizes force Omega(k*n) reallocations.

The size-k pump: k unit jobs with full windows plus one size-k job
hopping across the horizon in k-slot steps. Each hop evicts the unit
jobs in its path; over a sweep every unit job moves, so per-sweep cost
is Omega(k) and the per-request amortized cost grows linearly in k —
the reason the paper restricts its upper bounds to unit jobs.

Substitution note (per DESIGN.md): there is no exact polynomial
scheduler for mixed sizes (the offline problem is NP-hard), so the
measuring scheduler is the deadline-ordered first-fit rebuild, which is
exact on this family.
"""

from __future__ import annotations

from repro.adversaries import SizedLowerBound, sized_pump_sequence
from repro.baselines import SizedGreedyScheduler
from repro.sim import fit_growth, format_series, run_sequence
from repro.sim.report import experiment_header


def pump_cost(k: int, gamma: int = 2, sweeps: int = 3) -> tuple[int, int, int]:
    seq = sized_pump_sequence(k=k, gamma=gamma, sweeps=sweeps)
    sched = SizedGreedyScheduler(1)
    result = run_sequence(sched, seq, verify_each=True)
    bound = SizedLowerBound(k, gamma, sweeps).min_total_reallocations
    return len(seq), result.ledger.total_reallocations, bound


def test_e6_cost_linear_in_k(benchmark, record_result):
    ks = [2, 4, 8, 16, 32]
    totals, bounds, per_request = [], [], []
    requests = []
    for k in ks:
        s, total, bound = pump_cost(k)
        requests.append(s)
        totals.append(total)
        bounds.append(bound)
        per_request.append(round(total / s, 2))
    table = format_series(
        "k", ks,
        {
            "total reallocations": totals,
            "Obs 13 bound": bounds,
            "per-request cost": per_request,
            "requests": requests,
        },
        title=experiment_header(
            "E6", "Observation 13: size-k jobs force Omega(k*n) reallocations"
        ),
    )
    fit = fit_growth(ks, per_request)
    table += f"\ngrowth fit of per-request cost vs k: best={fit.best}"
    record_result("e6_sized_lb", table)

    for total, bound in zip(totals, bounds):
        assert total >= bound
    # per-request cost grows linearly with k (the Omega(k) amortized bound)
    assert fit.best == "linear"
    assert per_request[-1] >= 4 * per_request[0]
    benchmark.pedantic(lambda: pump_cost(8), rounds=1, iterations=1)


def test_e6_unit_jobs_immune(benchmark, record_result):
    """Contrast: the same pump with k=1-style unit probes costs O(1)
    per request under the reservation scheduler (Theorem 1 regime)."""
    from repro.core.api import ReservationScheduler
    from repro.core.requests import RequestSequence

    gamma, hops = 8, 48
    horizon = 2 * gamma * 16
    seq = RequestSequence()
    for i in range(16):
        seq.insert(f"u{i}", 0, horizon)
    uid = 0
    seq.insert(f"p{uid}", 0, 16)
    positions = list(range(0, horizon - 16 + 1, 16))
    for h in range(hops):
        pos = positions[(h + 1) % len(positions)]
        seq.delete(f"p{uid}")
        uid += 1
        seq.insert(f"p{uid}", pos, pos + 16)

    def run():
        # trim=False: isolate reservation mechanics from amortized
        # rebuild spikes (see E12 for the deamortization story).
        return run_sequence(ReservationScheduler(1, trim=False), seq,
                            verify_each=True)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "e6b_unit_contrast",
        experiment_header("E6b", "unit-size probe pump is cheap with slack")
        + f"\nmax/request: {result.ledger.max_reallocation}, "
        f"mean: {result.ledger.mean_reallocation:.3f}",
    )
    assert result.ledger.max_reallocation <= 8
