"""E7 — Lemma 10: the ALIGNED(W) transform loses at most 4x slack.

Two measurements:

1. **Span retention.** For every window, |ALIGNED(W)| >= |W|/4 (the
   geometric fact Lemma 10 rests on). We sweep all windows up to a
   horizon and report the worst retention ratio.

2. **Slack retention.** For random unaligned instances, the measured
   density-underallocation factor of ALIGNED(J) is at least 1/4 of the
   original's (Lemma 10 states the certified form: 4*gamma -> gamma).
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.alignment import align_jobs
from repro.core import Job, Window
from repro.feasibility import underallocation_factor
from repro.sim import format_table
from repro.sim.report import experiment_header


def worst_span_retention(horizon: int) -> Fraction:
    worst = Fraction(1)
    for release in range(horizon):
        for deadline in range(release + 1, horizon + 1):
            w = Window(release, deadline)
            ratio = Fraction(w.aligned_within().span, w.span)
            if ratio < worst:
                worst = ratio
    return worst


def random_instance(rng, n: int, horizon: int) -> dict:
    jobs = {}
    for i in range(n):
        span = int(rng.integers(1, horizon // 4))
        start = int(rng.integers(0, horizon - span))
        jobs[i] = Job(i, Window(start, start + span))
    return jobs


def test_e7_span_retention(benchmark, record_result):
    worst = benchmark.pedantic(lambda: worst_span_retention(96),
                               rounds=1, iterations=1)
    record_result(
        "e7a_span_retention",
        experiment_header("E7a", "ALIGNED(W) keeps > 1/4 of every span")
        + f"\nworst |ALIGNED(W)|/|W| over all windows in [0, 96): {worst} "
        f"(= {float(worst):.4f}; bound: > 1/4)",
    )
    assert worst > Fraction(1, 4)


def test_e7_slack_retention(benchmark, record_result):
    rng = np.random.default_rng(0)
    rows = []
    worst_ratio = Fraction(10)

    def sweep():
        nonlocal worst_ratio
        for trial in range(12):
            jobs = random_instance(rng, n=14, horizon=128)
            before = underallocation_factor(jobs.values(), 1)
            after = underallocation_factor(align_jobs(jobs).values(), 1)
            ratio = after / before
            worst_ratio = min(worst_ratio, ratio)
            rows.append([trial, f"{float(before):.2f}", f"{float(after):.2f}",
                         f"{float(ratio):.3f}"])

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["trial", "gamma before", "gamma after ALIGNED", "ratio"],
        rows,
        title=experiment_header(
            "E7b", "Lemma 10: aligning keeps >= 1/4 of the slack"),
    )
    table += f"\nworst ratio: {float(worst_ratio):.3f} (bound: >= 0.25)"
    record_result("e7b_slack_retention", table)
    assert worst_ratio >= Fraction(1, 4)
