"""E14 — extension: uniform size-k jobs escape the Observation 13 bound.

Observation 13 forces Omega(k) amortized cost only when sizes *mix*
(a size-k job sliding across unit jobs). With a single uniform size k,
the coarse-grid reduction recovers the unit-job guarantees: O(log* n)
reallocations per request, each moving one size-k job.

Series: per-request reallocation cost vs k for (a) the uniform-size
reservation scheduler on a pure size-k workload — must stay flat — and
(b) the mixed-size pump of E6 — grows linearly. The contrast localizes
the hardness exactly where the paper puts it: size *heterogeneity*,
not size itself.
"""

from __future__ import annotations

from repro.baselines import SizedGreedyScheduler, UniformSizedReservationScheduler
from repro.core import Job, Window
from repro.adversaries import sized_pump_sequence
from repro.sim import fit_growth, format_series, run_sequence
from repro.sim.report import experiment_header


def uniform_churn_cost(k: int) -> float:
    """Mean per-request cost of pure size-k churn on the coarse scheduler."""
    sched = UniformSizedReservationScheduler(k, 1, gamma=8)
    horizon = k * 2048
    for i in range(24):
        sched.insert(Job(i, Window(0, horizon), size=k))
    for rnd in range(3):
        for i in range(rnd * 8, rnd * 8 + 8):
            sched.delete(i)
        for i in range(100 + rnd * 8, 108 + rnd * 8):
            sched.insert(Job(i, Window(0, horizon), size=k))
    return sched.ledger.mean_reallocation


def mixed_pump_cost(k: int) -> float:
    seq = sized_pump_sequence(k=k, gamma=2, sweeps=3)
    result = run_sequence(SizedGreedyScheduler(1), seq, verify_each=False)
    return result.ledger.total_reallocations / len(seq)


def test_e14_uniform_flat_mixed_linear(benchmark, record_result):
    ks = [2, 4, 8, 16, 32]
    uniform, mixed = [], []

    def sweep():
        for k in ks:
            uniform.append(round(uniform_churn_cost(k), 3))
            mixed.append(round(mixed_pump_cost(k), 3))

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_series(
        "k", ks,
        {
            "uniform size-k mean cost": uniform,
            "mixed {1,k} mean cost (E6)": mixed,
        },
        title=experiment_header(
            "E14", "extension: uniform sizes keep O(log* n) guarantees; "
            "only MIXED sizes pay Omega(k)",
        ),
    )
    u_fit = fit_growth(ks, uniform)
    m_fit = fit_growth(ks, mixed)
    table += f"\nuniform fit: {u_fit.best}; mixed fit: {m_fit.best}"
    record_result("e14_uniform_sized", table)
    assert m_fit.best == "linear"
    assert u_fit.best != "linear" or max(uniform) < 2.0
    assert max(uniform) <= 3.0
    # at k=32 the mixed workload pays >= 3x the uniform one per request
    assert mixed[-1] >= 3 * max(uniform[-1], 0.5)
