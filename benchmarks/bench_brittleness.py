"""E3 — EDF/LLF brittleness: Omega(n) cascades even with huge slack.

The paper's Section 1/4 motivation: classical greedy policies (EDF,
LLF), recomputed after each request, are *brittle* — one insertion can
move every job, even in massively underallocated instances, because the
greedy order has no memory.

Construction: n jobs share the window [0, 4n) (4-underallocated). EDF
packs them left at slots 0..n-1. Inserting one job with window [0, 1)
re-sorts everything: the intruder takes slot 0 and all n standing jobs
shift — a Theta(n) cascade. The reservation scheduler and the
min-change matcher move O(1) jobs on the same request.

Series: per-insert reallocation cost vs n. EDF/LLF must fit `linear`;
reservation and matching must stay constant.
"""

from __future__ import annotations

from repro.baselines import (
    EDFRebuildScheduler,
    LLFRebuildScheduler,
    MinChangeMatchingScheduler,
)
from repro.core import Job, Window
from repro.core.api import ReservationScheduler
from repro.sim import fit_growth, format_series
from repro.sim.report import experiment_header


def intruder_cost(scheduler, n: int) -> int:
    """Standing jobs with window [0, 4n); one [0,1) intruder; its cost."""
    for i in range(n):
        scheduler.insert(Job(f"standing{i}", Window(0, 4 * n)))
    cost = scheduler.insert(Job("intruder", Window(0, 1)))
    return cost.reallocation_cost


def test_e3_edf_cascades_linearly(benchmark, record_result):
    ns = [8, 16, 32, 64, 128]
    edf_costs = [intruder_cost(EDFRebuildScheduler(1), n) for n in ns]
    llf_costs = [intruder_cost(LLFRebuildScheduler(1), n) for n in ns]
    # trim=False isolates per-request reservation mechanics from the
    # amortized n*-rebuild spikes (which would otherwise land on
    # arbitrary requests; the deamortized variant removes them — E12).
    res_costs = [intruder_cost(ReservationScheduler(1, trim=False), n)
                 for n in ns]
    # matching is O(n^3)/request: keep its sweep short but shaped.
    match_costs = [intruder_cost(MinChangeMatchingScheduler(1), n)
                   for n in ns[:4]]

    table = format_series(
        "n", ns,
        {
            "EDF rebuild": edf_costs,
            "LLF rebuild": llf_costs,
            "reservation": res_costs,
            "min-change (first 4)": match_costs + ["-"] * (len(ns) - 4),
        },
        title=experiment_header(
            "E3", "brittleness: one insert moves Omega(n) jobs under "
            "EDF/LLF, O(1) under reservation"
        ),
    )
    edf_fit = fit_growth(ns, edf_costs)
    res_fit = fit_growth(ns, res_costs)
    table += (f"\nEDF growth fit: {edf_fit.best}; "
              f"reservation growth fit: {res_fit.best}")
    record_result("e3_brittleness", table)

    # EDF/LLF: the full cascade — every standing job moves.
    assert edf_costs == ns
    assert llf_costs == ns
    assert edf_fit.best == "linear"
    # Reservation and matching: constant.
    assert max(res_costs) <= 4
    assert res_fit.best in ("constant", "logstar")
    assert max(match_costs) <= 1

    benchmark.pedantic(lambda: intruder_cost(EDFRebuildScheduler(1), 64),
                       rounds=1, iterations=1)


def test_e3_churn_mean_costs(benchmark, record_result):
    """Mean per-request cost on random churn: EDF pays a constant
    fraction of n per request; reservation pays a constant."""
    from repro.sim import run_comparison
    from repro.workloads import AlignedWorkloadConfig, random_aligned_sequence

    cfg = AlignedWorkloadConfig(
        num_requests=300, gamma=8, horizon=1 << 10, max_span=1 << 10,
        delete_fraction=0.35,
    )
    seq = random_aligned_sequence(cfg, seed=12)

    def compare():
        return run_comparison({
            "reservation": lambda: ReservationScheduler(1, gamma=8),
            "EDF rebuild": lambda: EDFRebuildScheduler(1),
            "LLF rebuild": lambda: LLFRebuildScheduler(1),
        }, seq, verify_each=False)

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    rows = [[name, r.ledger.max_reallocation,
             round(r.ledger.mean_reallocation, 3),
             r.ledger.total_reallocations]
            for name, r in results.items()]
    from repro.sim import format_table
    table = format_table(
        ["scheduler", "max/req", "mean/req", "total"],
        rows,
        title=experiment_header("E3b", "random churn, same sequence"),
    )
    record_result("e3b_churn_comparison", table)
    res = results["reservation"].ledger
    edf = results["EDF rebuild"].ledger
    assert res.mean_reallocation < edf.mean_reallocation
