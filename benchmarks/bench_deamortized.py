"""E12 — deamortization: O(1) worst-case vs O(n) amortized spikes.

Section 4's closing construction. The amortized trimming wrapper
rebuilds everything when n* changes: mean cost O(1) but the triggering
request pays Theta(n). The deamortized wrapper (even/odd-slot split,
two migrations per request) caps every request at O(1), at the price of
requiring twice the slack.

Series: worst single-request reallocation cost vs n for both variants
on the same growth workload. The amortized spike must grow linearly
with n; the deamortized max must stay constant.
"""

from __future__ import annotations

from repro.core import Job, Window
from repro.reservation import (
    DeamortizedReservationScheduler,
    TrimmedReservationScheduler,
)
from repro.sim import fit_growth, format_series
from repro.sim.report import experiment_header


def grow_and_measure(scheduler, n: int) -> int:
    for i in range(n):
        scheduler.insert(Job(i, Window(0, 1 << 14)))
    return scheduler.ledger.max_reallocation


def test_e12_deamortization(benchmark, record_result):
    ns = [32, 64, 128, 256, 512]
    amortized, deamortized = [], []

    def sweep():
        for n in ns:
            amortized.append(grow_and_measure(
                TrimmedReservationScheduler(gamma=8), n))
            deamortized.append(grow_and_measure(
                DeamortizedReservationScheduler(gamma=8), n))

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_series(
        "n", ns,
        {
            "amortized max/request": amortized,
            "deamortized max/request": deamortized,
        },
        title=experiment_header(
            "E12", "deamortized rebuild: worst-case O(1) vs Theta(n) spikes"
        ),
    )
    am_fit = fit_growth(ns, amortized)
    de_fit = fit_growth(ns, deamortized)
    table += (f"\namortized spike growth: {am_fit.best}; "
              f"deamortized growth: {de_fit.best}")
    record_result("e12_deamortized", table)

    # Amortized spikes scale with n (the rebuild moves ~n jobs)...
    assert am_fit.best == "linear"
    # the biggest spike is the last n* crossing, which moves ~45-50% of n
    assert amortized[-1] >= 0.4 * ns[-1]
    # ...while the deamortized worst case is a small constant: bounded
    # absolutely and not growing past the smallest scale (a 16x increase
    # in n leaves the max within +1 of its n=64 value).
    assert max(deamortized) <= 8
    assert deamortized[-1] <= deamortized[1] + 1
    assert de_fit.best != "linear"
