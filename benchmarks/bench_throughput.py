"""E10/E11/E12/E13 — systems throughput: requests/second per scheduler.

The engineering table: how fast is each scheduler at processing the
same 8-underallocated churn sequence (no feasibility verification in
the timed region)? The reservation scheduler does O(poly(L_l)) local
work per request; the rebuild baselines pay O(n log n) (EDF/LLF) or
O(n^3) (matching) per request, so their throughput collapses as n
grows. pytest-benchmark provides the timing statistics.

Throughput is reported from ``RunResult.scheduler_time_s`` — the time
spent inside ``scheduler.apply`` only. Earlier revisions divided by the
whole loop wall time, which silently charged the driver's audit hooks
to the scheduler.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    EDFRebuildScheduler,
    LLFRebuildScheduler,
    MinChangeMatchingScheduler,
    NaivePeckingScheduler,
)
from repro.core.api import ReservationScheduler
from repro.reservation import AlignedReservationScheduler
from repro.sim import run_sequence
from repro.workloads import AlignedWorkloadConfig, random_aligned_sequence


def make_sequence(num_requests=400, seed=0):
    cfg = AlignedWorkloadConfig(
        num_requests=num_requests, gamma=8, horizon=1 << 11,
        max_span=1 << 11, delete_fraction=0.35,
    )
    return random_aligned_sequence(cfg, seed=seed)


SEQ = make_sequence()
SMALL_SEQ = make_sequence(num_requests=120, seed=1)

FACTORIES = {
    "reservation_raw": (lambda: AlignedReservationScheduler(), SEQ),
    "reservation_theorem1": (lambda: ReservationScheduler(1, gamma=8), SEQ),
    "naive_pecking": (lambda: NaivePeckingScheduler(), SEQ),
    "edf_rebuild": (lambda: EDFRebuildScheduler(1), SEQ),
    "llf_rebuild": (lambda: LLFRebuildScheduler(1), SEQ),
    "minchange_matching": (lambda: MinChangeMatchingScheduler(1), SMALL_SEQ),
}


@pytest.mark.parametrize("name", list(FACTORIES))
def test_e10_throughput(benchmark, name):
    factory, seq = FACTORIES[name]
    sched_times = []

    def kernel():
        result = run_sequence(factory(), seq, verify_each=False)
        sched_times.append(result.scheduler_time_s)

    benchmark.pedantic(kernel, rounds=3, iterations=1)
    benchmark.extra_info["requests"] = len(seq)
    # honest per-request cost: scheduler.apply time only, best of rounds
    benchmark.extra_info["requests_per_second"] = len(seq) / min(sched_times)


def test_e10b_scaling_crossover(benchmark, record_result):
    """EDF's per-request time grows with n (it rebuilds the whole
    schedule); the reservation scheduler's per-request time does not.
    This measures the scaling direction behind the crossover claim."""
    from repro.sim.report import experiment_header, format_series

    def per_request_us(factory, n_target, seed):
        horizon = 1 << max(10, (16 * n_target - 1).bit_length())
        cfg = AlignedWorkloadConfig(
            num_requests=3 * n_target, gamma=8, horizon=horizon,
            max_span=horizon, delete_fraction=0.25,
        )
        seq = random_aligned_sequence(cfg, seed=seed)
        result = run_sequence(factory(), seq, verify_each=False)
        return 1e6 * result.scheduler_time_s / len(seq)

    ns = [64, 256, 1024]
    edf_us, res_us = [], []

    def sweep():
        for n in ns:
            edf_us.append(round(per_request_us(
                lambda: EDFRebuildScheduler(1), n, seed=0), 1))
            res_us.append(round(per_request_us(
                lambda: AlignedReservationScheduler(), n, seed=0), 1))

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_series(
        "n", ns,
        {"EDF us/request": edf_us, "reservation us/request": res_us},
        title=experiment_header(
            "E10b", "per-request wall time scaling: rebuilds grow with n, "
            "reservations do not",
        ),
    )
    edf_growth = edf_us[-1] / edf_us[0]
    res_growth = res_us[-1] / res_us[0]
    table += (f"\ngrowth n=64 -> n=1024: EDF {edf_growth:.1f}x, "
              f"reservation {res_growth:.1f}x")
    record_result("e10b_scaling", table)
    # EDF's per-request time grows markedly faster than reservation's.
    assert edf_growth > 3 * res_growth


def test_e10c_fastpath_10k(benchmark, record_result, record_json):
    """The indexed fast path on the 10k-request scenario-scale workload.

    Reports scheduler-only requests/second with verification off, plus
    the verified-mode ratio: incremental verification must keep a
    verified run within 2x of the unverified wall time (it replaced the
    O(n)-per-request full audit).
    """
    from repro.sim.report import experiment_header, format_table

    seq = make_sequence(num_requests=10_000, seed=0)

    results = {}

    def kernel():
        # best-of-5 per mode: the recorded metric is the run with the
        # smallest scheduler time, the standard noise-robust estimator
        # (single-shot numbers on a shared box swing by 20%+)
        for key, verify in (("off", False), ("incremental", True)):
            best = None
            for _ in range(5):
                res = run_sequence(
                    AlignedReservationScheduler(), seq, verify_each=verify)
                if best is None or res.scheduler_time_s < best.scheduler_time_s:
                    best = res
            results[key] = best

    benchmark.pedantic(kernel, rounds=1, iterations=1)
    off, inc = results["off"], results["incremental"]
    ratio = inc.wall_time_s / off.wall_time_s
    rows = [
        ["verify off", round(off.requests_per_second),
         round(off.scheduler_time_s, 3), round(off.audit_time_s, 3)],
        ["incremental", round(inc.requests_per_second),
         round(inc.scheduler_time_s, 3), round(inc.audit_time_s, 3)],
    ]
    table = format_table(
        ["mode", "req/s (sched)", "sched_s", "audit_s"], rows,
        title=experiment_header(
            "E10c", "fast-path engine on 10k requests: scheduler-only "
            f"throughput; verified/unverified wall ratio {ratio:.2f}x",
        ),
    )
    record_result("e10c_fastpath_10k", table)
    # Pre-hot-path-lint numbers (PR 6's committed BENCH_e10c.json) — the
    # before side of the HOT001/HOT002/HOT003 burn-down in this PR.
    before = {
        "requests_per_second_unverified": 16165,
        "requests_per_second_incremental": 16524,
        "scheduler_time_s_unverified": 0.619,
        "scheduler_time_s_incremental": 0.605,
    }
    record_json("BENCH_e10c", {
        "experiment": "e10c",
        "workload": {"requests": 10_000, "seed": 0},
        "metrics": {
            "requests_per_second_unverified": round(
                off.requests_per_second),
            "requests_per_second_incremental": round(
                inc.requests_per_second),
            "scheduler_time_s_unverified": round(off.scheduler_time_s, 3),
            "scheduler_time_s_incremental": round(inc.scheduler_time_s, 3),
            "audit_time_s_incremental": round(inc.audit_time_s, 3),
            "verified_wall_ratio": round(ratio, 3),
        },
        "hot_path_fix_delta": {
            "before": before,
            "throughput_ratio_unverified": round(
                off.requests_per_second
                / before["requests_per_second_unverified"], 3),
            "throughput_ratio_incremental": round(
                inc.requests_per_second
                / before["requests_per_second_incremental"], 3),
        },
        "claims": {"verified_wall_ratio_below": 2.0},
    })
    benchmark.extra_info["requests_per_second"] = off.requests_per_second
    benchmark.extra_info["verified_ratio"] = ratio
    # Incremental verification keeps verified runs within 2x unverified.
    assert ratio < 2.0


def test_e11_batched_vs_sequential(benchmark, record_result, record_json):
    """E11 — the batch-first API on churn-storm at batch size 64.

    Paired-interleaved measurement: a sequential scheduler and an
    atomic-batched scheduler advance through the same churn-storm
    stream segment by segment, alternating which runs first, so CPU
    throttling and cache effects hit both sides equally. Placements and
    ledgers are asserted identical at the end — the batched side does
    the same scheduling work and amortizes only bookkeeping: one batch
    journal instead of a per-request undo journal, rollback-free
    trimming rebuilds (an abort discards the rebuild inner wholesale),
    suspended inner-layer cost finalization, and one feasibility check
    per commit. That bounds the honest gain: the strict
    sequential-equivalence contract pins every placement decision, so
    only the bookkeeping fraction (~10-20% of wall time) is batchable.
    """
    import time

    from repro.core.requests import iter_batches
    from repro.sim.report import experiment_header, format_table
    from repro.workloads.scenarios import churn_storm_sequence

    import statistics

    seq = list(churn_storm_sequence(requests=8000, seed=0))
    batch_size = 64
    segments = 20
    seg = len(seq) // segments

    results = {}

    def kernel():
        import gc

        # The batch journal lives for 64 requests instead of one, so
        # with the collector enabled its entries get promoted and full
        # collections land disproportionately on batch segments —
        # measuring CPython GC generation policy, not the scheduler.
        # Disable collection inside the timed region (standard
        # microbenchmark hygiene; allocation/free costs still count).
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            s_seq = ReservationScheduler(1, gamma=8)
            s_bat = ReservationScheduler(1, gamma=8)
            t_seq = t_bat = 0.0
            ratios = []
            pt = time.process_time
            for i in range(segments):
                chunk = (seq[i * seg:(i + 1) * seg] if i < segments - 1
                         else seq[(segments - 1) * seg:])
                seg_times = [0.0, 0.0]
                for side in ((0, 1) if i % 2 == 0 else (1, 0)):
                    if side == 0:
                        t0 = pt()
                        for r in chunk:
                            s_seq.apply(r)
                        seg_times[0] = pt() - t0
                    else:
                        t0 = pt()
                        for b in iter_batches(chunk, batch_size):
                            res = s_bat.apply_batch(b, atomic=True)
                            if res.failed:
                                raise AssertionError(res.failure)
                        seg_times[1] = pt() - t0
                t_seq += seg_times[0]
                t_bat += seg_times[1]
                ratios.append(seg_times[0] / seg_times[1])
        finally:
            if gc_was_enabled:
                gc.enable()
        assert dict(s_seq.placements) == dict(s_bat.placements)
        assert s_seq.ledger.entries == s_bat.ledger.entries
        results["seq"] = t_seq
        results["bat"] = t_bat
        results["ratios"] = ratios

    benchmark.pedantic(kernel, rounds=1, iterations=1)
    t_seq, t_bat = results["seq"], results["bat"]
    # Median of per-segment ratios: each segment's two sides run
    # back-to-back, so frequency throttling cancels pairwise and a few
    # GC/scheduler outlier segments cannot swing the verdict.
    median_ratio = statistics.median(results["ratios"])
    rows = [
        ["sequential apply", round(len(seq) / t_seq), round(t_seq, 3)],
        [f"apply_batch({batch_size}, atomic)", round(len(seq) / t_bat),
         round(t_bat, 3)],
    ]
    table = format_table(
        ["mode", "req/s (sched)", "sched_s"], rows,
        title=experiment_header(
            "E11", "batched vs sequential on churn-storm (paired segments, "
            "identical placements+ledgers): median segment speedup "
            f"{median_ratio:.2f}x, aggregate {t_seq / t_bat:.2f}x",
        ),
    )
    record_result("e11_batched_throughput", table)
    record_json("BENCH_e11", {
        "experiment": "e11",
        "workload": {"scenario": "churn-storm", "requests": len(seq),
                     "seed": 0, "batch_size": batch_size},
        "metrics": {
            "requests_per_second_sequential": round(len(seq) / t_seq),
            "requests_per_second_batched": round(len(seq) / t_bat),
            "batched_over_sequential_median": round(median_ratio, 3),
            "batched_over_sequential_aggregate": round(t_seq / t_bat, 3),
        },
        "claims": {"median_segment_speedup_above": 0.95},
    })
    benchmark.extra_info["batched_over_sequential_median"] = median_ratio
    benchmark.extra_info["batched_over_sequential_aggregate"] = t_seq / t_bat
    benchmark.extra_info["batch_size"] = batch_size
    # Regression floor: batching must never lose to sequential (the
    # measured gain is ~1.1x; CI boxes are too noisy to pin it tighter).
    assert median_ratio > 0.95


def test_e11b_journal_allocation_diet(benchmark, record_result):
    """E11b — the tuple+arena undo journal vs the closure-journal oracle.

    The journal allocation diet (ROADMAP part 2): undo entries are
    tuple opcodes replayed by one dispatch loop, living on a reusable
    per-scheduler arena, instead of a closure per mutation on fresh
    per-request containers. Three measurements:

    1. *Per-entry allocation calibration* (tracemalloc): build 10k undo
       entries in each representation and count allocated blocks/bytes.
       A closure entry costs a function object + closure tuple + cells;
       a tuple entry is one tuple. This is the exact per-entry price,
       independent of scheduler noise.
    2. *Atomic-batch footprint*: drive churn-storm through atomic
       batch-64 bursts under tracemalloc and record the per-batch
       transient peak (reset_peak before each burst). The batch journal
       lives for the whole burst, so this is where the diet shows up as
       resident bytes — and, with the GC enabled, as collector pressure.
    3. *Paired-segment timing* (E11's protocol, GC enabled — the
       closure journal's GC promotion inside batches is real workload
       cost, so it is measured, not disabled away): closure vs arena on
       the same stream, sequential apply and atomic batch-64.

    Both sides record the same number of journal entries (asserted —
    the representation is the only difference) and end bit-identical
    (placements + ledgers). Honest expectation: allocations per entry
    drop ~3x and per-batch transient peak ~20-25%; wall time moves a
    few percent (the journal's allocation share, not its whole 15-20%
    bookkeeping share — attach/detach and entry recording remain).
    """
    import statistics
    import time
    import tracemalloc

    from repro.core.requests import iter_batches
    from repro.reservation.interval import Interval
    from repro.reservation.journal import OP_ASSIGN
    from repro.sim.report import experiment_header, format_table
    from repro.workloads.scenarios import churn_storm_sequence

    seq = list(churn_storm_sequence(requests=8000, seed=0))
    batch_size = 64
    segments = 20
    seg = len(seq) // segments

    def paired(drive_closure, drive_arena):
        """E11 paired-segment protocol; returns (t_closure, t_arena, median)."""
        t_c = t_a = 0.0
        ratios = []
        pt = time.process_time
        for i in range(segments):
            chunk = (seq[i * seg:(i + 1) * seg] if i < segments - 1
                     else seq[(segments - 1) * seg:])
            seg_times = [0.0, 0.0]
            for side in ((0, 1) if i % 2 == 0 else (1, 0)):
                t0 = pt()
                (drive_closure if side == 0 else drive_arena)(chunk)
                seg_times[side] = pt() - t0
            t_c += seg_times[0]
            t_a += seg_times[1]
            ratios.append(seg_times[0] / seg_times[1])
        return t_c, t_a, statistics.median(ratios)

    def batch_driver(sched):
        def drive(chunk):
            for b in iter_batches(chunk, batch_size):
                res = sched.apply_batch(b, atomic=True)
                if res.failed:
                    raise AssertionError(res.failure)
        return drive

    def seq_driver(sched):
        def drive(chunk):
            for r in chunk:
                sched.apply(r)
        return drive

    def peak_per_batch(sched):
        """Median/max transient tracemalloc peak per atomic burst."""
        peaks = []
        tracemalloc.start()
        try:
            for b in iter_batches(seq, batch_size):
                tracemalloc.reset_peak()
                cur0, _ = tracemalloc.get_traced_memory()
                res = sched.apply_batch(b, atomic=True)
                if res.failed:
                    raise AssertionError(res.failure)
                _, peak = tracemalloc.get_traced_memory()
                peaks.append(peak - cur0)
        finally:
            tracemalloc.stop()
        return statistics.median(peaks), max(peaks)

    def journal_entries(sched):
        return sum(m.journal_entries_total
                   for m in sched.machine_schedulers())

    results = {}

    def kernel():
        # 1. per-entry calibration (identical payloads on both sides, so
        #    the captured-int cost cancels in the comparison)
        n = 10_000
        iv = Interval(level=1, index=0, lo=0, hi=64,
                      enclosing_spans=(64, 128))
        tracemalloc.start()
        base = tracemalloc.take_snapshot()
        closure_entries = [iv._closure_assign(0, s) for s in range(n)]
        after_closures = tracemalloc.take_snapshot()
        tuple_entries = [(OP_ASSIGN, iv, 0, s) for s in range(n)]
        after_tuples = tracemalloc.take_snapshot()
        tracemalloc.stop()

        def delta(a, b):
            stats = b.compare_to(a, "filename")
            return (sum(s.count_diff for s in stats),
                    sum(s.size_diff for s in stats))
        results["closure_entry"] = delta(base, after_closures)
        results["tuple_entry"] = delta(after_closures, after_tuples)
        del closure_entries, tuple_entries

        # 2. atomic-batch transient footprint (untimed, tracemalloc on)
        results["closure_peak"] = peak_per_batch(
            ReservationScheduler(1, gamma=8, journal="closure"))
        results["arena_peak"] = peak_per_batch(
            ReservationScheduler(1, gamma=8))

        # 3a. paired timing, sequential apply
        s_c = ReservationScheduler(1, gamma=8, journal="closure")
        s_a = ReservationScheduler(1, gamma=8)
        results["seq_times"] = paired(seq_driver(s_c), seq_driver(s_a))
        assert dict(s_c.placements) == dict(s_a.placements)
        assert s_c.ledger.entries == s_a.ledger.entries
        results["seq_entries"] = (journal_entries(s_c), journal_entries(s_a))

        # 3b. paired timing, atomic batch 64
        b_c = ReservationScheduler(1, gamma=8, journal="closure")
        b_a = ReservationScheduler(1, gamma=8)
        results["bat_times"] = paired(batch_driver(b_c), batch_driver(b_a))
        assert dict(b_c.placements) == dict(b_a.placements)
        assert b_c.ledger.entries == b_a.ledger.entries
        results["bat_entries"] = (journal_entries(b_c), journal_entries(b_a))

    benchmark.pedantic(kernel, rounds=1, iterations=1)
    cb, csz = results["closure_entry"]
    tb, tsz = results["tuple_entry"]
    n = 10_000
    seq_med = results["seq_times"][2]
    bat_med = results["bat_times"][2]
    rows = [
        ["closure entry (oracle)", f"{cb / n:.2f}", f"{csz / n:.0f}",
         results["closure_peak"][0], "-"],
        ["tuple entry (arena)", f"{tb / n:.2f}", f"{tsz / n:.0f}",
         results["arena_peak"][0], "-"],
        ["sequential apply", "-", "-", "-", f"{seq_med:.3f}x"],
        [f"apply_batch({batch_size}, atomic)", "-", "-", "-",
         f"{bat_med:.3f}x"],
    ]
    table = format_table(
        ["journal", "blocks/entry", "B/entry", "median peak B/batch",
         "closure/arena time"],
        rows,
        title=experiment_header(
            "E11b", "journal allocation diet: tuple+arena vs closure "
            f"oracle on churn-storm ({len(seq)} requests; "
            f"{results['bat_entries'][1]} journal entries per side, "
            "identical placements+ledgers)",
        ),
    )
    record_result("e11b_journal_diet", table)
    benchmark.extra_info["blocks_per_closure_entry"] = cb / n
    benchmark.extra_info["blocks_per_tuple_entry"] = tb / n
    benchmark.extra_info["closure_peak_median"] = results["closure_peak"][0]
    benchmark.extra_info["arena_peak_median"] = results["arena_peak"][0]
    benchmark.extra_info["seq_closure_over_arena_median"] = seq_med
    benchmark.extra_info["bat_closure_over_arena_median"] = bat_med
    # Representation is the only difference: same journal entry counts.
    assert results["seq_entries"][0] == results["seq_entries"][1]
    assert results["bat_entries"][0] == results["bat_entries"][1]
    # The diet's win condition: strictly fewer allocations per entry and
    # a strictly lower transient footprint inside atomic batches.
    assert tb < cb and tsz < csz
    assert results["arena_peak"][0] < results["closure_peak"][0]
    # Timing floor only: per-segment ratios on a contended single-core
    # container swing ~±10% run to run (measured 0.89-1.05x), so this
    # is a catastrophic-regression guard, not the deliverable — the
    # allocation metrics above are the deterministic win condition.
    assert seq_med > 0.8 and bat_med > 0.8


@pytest.mark.parametrize("scenario", ["churn-storm", "burst-arrivals"])
def test_e12_backend_comparison_m3(benchmark, record_result, record_json,
                                   scenario):
    """E12 — the three drive backends head to head at m=3, batch 64.

    Paired-segment measurement (E11's throttling-robust protocol,
    extended to three sides): a sequential, an atomic-batched, and a
    sharded scheduler advance through the same 3-machine stream segment
    by segment with rotating order, and placements + ledgers are
    asserted identical at the end — all three do the same scheduling
    work. Sharded drives each burst through per-machine shard workers
    (plan_shard_execution -> ShardWorker per machine -> touched-log
    merge), which replaces the delegator's per-request dispatch with
    one planning pass and one merge pass per burst. Honest expectation:
    the strict equivalence contract pins every placement decision, and
    CPython's GIL keeps the serial and thread-pool worker variants on
    one core, so sharded lands in the batched backend's ~1.05-1.1x
    band over sequential — the win at this PR is the architecture
    (independent per-shard work-streams, measured and equivalence-
    tested), not wall-clock yet.
    """
    import gc
    import statistics
    import time

    from repro.core.requests import iter_batches
    from repro.sim.report import experiment_header, format_table
    from repro.workloads.scenarios import (
        burst_arrivals_sequence,
        churn_storm_sequence,
    )

    gen = (churn_storm_sequence if scenario == "churn-storm"
           else burst_arrivals_sequence)
    seq = list(gen(requests=6000, seed=0, num_machines=3))
    batch_size = 64
    segments = 15
    seg = len(seq) // segments

    results = {}

    def kernel():
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            scheds = [ReservationScheduler(3, gamma=8) for _ in range(3)]
            times = [0.0, 0.0, 0.0]
            ratios = {"batched": [], "sharded": []}
            pt = time.process_time

            def drive(side, chunk):
                t0 = pt()
                if side == 0:
                    for r in chunk:
                        scheds[0].apply(r)
                elif side == 1:
                    for b in iter_batches(chunk, batch_size):
                        res = scheds[1].apply_batch(b, atomic=True)
                        if res.failed:
                            raise AssertionError(res.failure)
                else:
                    for b in iter_batches(chunk, batch_size):
                        res = scheds[2].apply_batch_sharded(b)
                        if res.failed:
                            raise AssertionError(res.failure)
                times[side] += pt() - t0
                return pt() - t0

            for i in range(segments):
                chunk = (seq[i * seg:(i + 1) * seg] if i < segments - 1
                         else seq[(segments - 1) * seg:])
                seg_times = [0.0, 0.0, 0.0]
                for side in [(i + j) % 3 for j in range(3)]:
                    seg_times[side] = drive(side, chunk)
                ratios["batched"].append(seg_times[0] / seg_times[1])
                ratios["sharded"].append(seg_times[0] / seg_times[2])
        finally:
            if gc_was_enabled:
                gc.enable()
        base = scheds[0]
        for other in scheds[1:]:
            assert dict(other.placements) == dict(base.placements)
            assert other.ledger.entries == base.ledger.entries
        results["times"] = times
        results["ratios"] = ratios

    benchmark.pedantic(kernel, rounds=1, iterations=1)
    times, ratios = results["times"], results["ratios"]
    med_bat = statistics.median(ratios["batched"])
    med_shd = statistics.median(ratios["sharded"])
    n = len(seq)
    rows = [
        ["sequential apply", round(n / times[0]), round(times[0], 3), "1.00x"],
        [f"apply_batch({batch_size}, atomic)", round(n / times[1]),
         round(times[1], 3), f"{med_bat:.2f}x"],
        [f"apply_batch_sharded({batch_size})", round(n / times[2]),
         round(times[2], 3), f"{med_shd:.2f}x"],
    ]
    table = format_table(
        ["backend", "req/s (sched)", "sched_s", "median segment speedup"],
        rows,
        title=experiment_header(
            "E12", f"drive backends on {scenario} at m=3 (paired segments, "
            "identical placements+ledgers)",
        ),
    )
    record_result(f"e12_backends_{scenario}", table)
    record_json("BENCH_e12", {
        "experiment": "e12",
        "workload": {"scenario": scenario, "requests": n, "seed": 0,
                     "num_machines": 3, "batch_size": batch_size},
        "metrics": {
            "requests_per_second_sequential": round(n / times[0]),
            "requests_per_second_batched": round(n / times[1]),
            "requests_per_second_sharded": round(n / times[2]),
            "batched_over_sequential_median": round(med_bat, 3),
            "sharded_over_sequential_median": round(med_shd, 3),
        },
        "claims": {"sharded_median_speedup_above": 0.9},
    }, section=scenario)
    benchmark.extra_info["batched_over_sequential_median"] = med_bat
    benchmark.extra_info["sharded_over_sequential_median"] = med_shd
    # Regression floor only: sharded must stay in the batched band
    # (measured ~1.05-1.1x; the plan+merge overhead must not regress it
    # below sequential beyond CI noise).
    assert med_shd > 0.9


@pytest.mark.parametrize("m", [3, 4])
def test_e13_process_sharded_backend(benchmark, record_result, record_json,
                                     m):
    """E13 — process-resident shard workers vs sequential at m=3 / m=4.

    Paired-segment measurement on churn-storm at batch 64 (E11/E12's
    throttling-robust protocol), with two differences forced by what is
    being measured. First, timing is WALL CLOCK (``perf_counter``), not
    ``process_time``: the scheduling work happens in child processes,
    which parent CPU time cannot see, and wall clock is exactly what
    process parallelism is supposed to improve. Second, the worker pool
    stays resident across all segments — that persistence (state never
    ships per burst; only op streams and touched logs cross the pipe)
    is the architecture under test.

    Equivalence is asserted at the end (identical placements and
    ledgers), so the process side does the same scheduling work.

    Honest expectation: the coordinator's plan+merge is the serial
    fraction, so the speedup ceiling is Amdahl-bounded (~2-3x at m=4
    when worker compute dominates). The target — >= 1.3x sequential at
    m=4, batch 64 — NEEDS m+1 free cores (m workers + coordinator); on
    fewer cores there is no parallelism to win, only IPC overhead to
    pay, and the bench asserts a no-catastrophic-regression floor
    instead (measured 0.8-0.9x on a 1-core container) while recording
    the core count alongside the numbers. ``E13_REQUESTS`` scales the
    stream (default 20000; the ROADMAP headline uses 100000).
    """
    import gc
    import os
    import statistics
    import time

    from repro.core.requests import iter_batches
    from repro.sim.report import experiment_header, format_table
    from repro.workloads.scenarios import churn_storm_sequence

    requests = int(os.environ.get("E13_REQUESTS", "20000"))
    seq = list(churn_storm_sequence(requests=requests, seed=0,
                                    num_machines=m))
    batch_size = 64
    segments = 15
    seg = len(seq) // segments
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1

    results = {}

    def kernel():
        gc_was_enabled = gc.isenabled()
        gc.disable()
        s_seq = ReservationScheduler(m, gamma=8)
        s_proc = ReservationScheduler(m, gamma=8)
        try:
            times = [0.0, 0.0]
            ratios = []
            perf = time.perf_counter
            for i in range(segments):
                chunk = (seq[i * seg:(i + 1) * seg] if i < segments - 1
                         else seq[(segments - 1) * seg:])
                seg_times = [0.0, 0.0]
                for side in ((0, 1) if i % 2 == 0 else (1, 0)):
                    t0 = perf()
                    if side == 0:
                        for r in chunk:
                            s_seq.apply(r)
                    else:
                        for b in iter_batches(chunk, batch_size):
                            res = s_proc.apply_batch_sharded(
                                b, workers="processes")
                            if res.failed:
                                raise AssertionError(res.failure)
                    seg_times[side] = perf() - t0
                times[0] += seg_times[0]
                times[1] += seg_times[1]
                ratios.append(seg_times[0] / seg_times[1])
        finally:
            s_proc.close_shard_workers()
            if gc_was_enabled:
                gc.enable()
        assert dict(s_seq.placements) == dict(s_proc.placements)
        assert s_seq.ledger.entries == s_proc.ledger.entries
        results["times"] = times
        results["ratios"] = ratios

    benchmark.pedantic(kernel, rounds=1, iterations=1)
    times, ratios = results["times"], results["ratios"]
    med = statistics.median(ratios)
    n = len(seq)
    rows = [
        ["sequential apply", round(n / times[0]), round(times[0], 3), "1.00x"],
        [f"apply_batch_sharded({batch_size}, processes)",
         round(n / times[1]), round(times[1], 3), f"{med:.2f}x"],
    ]
    table = format_table(
        ["backend", "req/s (wall)", "wall_s", "median segment speedup"],
        rows,
        title=experiment_header(
            "E13", f"process-resident shard workers on churn-storm, m={m}, "
            f"batch {batch_size}, {n} requests, {cores} core(s) "
            "(paired segments, wall clock, identical placements+ledgers)",
        ),
    )
    record_result(f"e13_process_workers_m{m}", table)
    record_json("BENCH_e13", {
        "experiment": "e13",
        "workload": {"scenario": "churn-storm", "requests": n, "seed": 0,
                     "num_machines": m, "batch_size": batch_size},
        "environment": {"cores": cores},
        "metrics": {
            "requests_per_second_sequential": round(n / times[0]),
            "requests_per_second_process_sharded": round(n / times[1]),
            "process_over_sequential_median": round(med, 3),
        },
        "claims": {
            "median_speedup_above": 1.3 if cores >= m + 1 else 0.6,
        },
    }, section=f"m{m}")
    benchmark.extra_info["process_over_sequential_median"] = med
    benchmark.extra_info["cores"] = cores
    benchmark.extra_info["requests"] = n
    if cores >= m + 1:
        # the acceptance bar: real parallelism available -> real speedup
        assert med >= 1.3
    else:
        # no parallelism to be had: only require that the IPC overhead
        # stays bounded (measured ~0.8-0.9x on a single core)
        assert med > 0.6


@pytest.mark.parametrize("scenario", ["churn-storm", "burst-arrivals"])
def test_e14_flexible_vs_strict(benchmark, record_result, record_json,
                                scenario):
    """E14 — flexible batch semantics vs strict sequential, single core.

    Paired-segment measurement (E11/E12's throttling-robust protocol,
    three sides): a strict sequential scheduler and two flexible-batched
    schedulers (batch 16 and 64) advance through the same stream segment
    by segment with rotating order. Unlike E11, the flexible sides are
    NOT placement-identical — that is the point. The bounds-equivalence
    contract frees placements, which legalizes real work reduction:
    interior insert/delete pairs elide entirely, joint inserts run in
    rebuild order, and the n*-trimming layer pre-sizes once per burst
    from the planner's final-count hint instead of rebuilding at every
    mid-batch threshold crossing — on churn-storm those skipped rebuild
    storms are the dominant win (~2x at batch 64). What stays pinned is
    asserted at the end: identical job tables and max-span, one ledger
    entry per request; per-request Theorem 1 bounds are covered by the
    differential suite (``test_backend_differential`` bounds mode).
    """
    import gc
    import statistics
    import time

    from repro.core.requests import iter_batches
    from repro.sim.report import experiment_header, format_table
    from repro.workloads.scenarios import (
        burst_arrivals_sequence,
        churn_storm_sequence,
    )

    gen = (churn_storm_sequence if scenario == "churn-storm"
           else burst_arrivals_sequence)
    seq = list(gen(requests=8000, seed=0))
    batch_sizes = (16, 64)
    segments = 20
    seg = len(seq) // segments

    results = {}

    def kernel():
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            scheds = [ReservationScheduler(1, gamma=8) for _ in range(3)]
            times = [0.0, 0.0, 0.0]
            ratios = {bs: [] for bs in batch_sizes}
            pt = time.process_time

            def drive(side, chunk):
                t0 = pt()
                if side == 0:
                    for r in chunk:
                        scheds[0].apply(r)
                else:
                    for b in iter_batches(chunk, batch_sizes[side - 1]):
                        res = scheds[side].apply_batch(
                            b, semantics="flexible")
                        if res.failed:
                            raise AssertionError(res.failure)
                times[side] += pt() - t0
                return pt() - t0

            for i in range(segments):
                chunk = (seq[i * seg:(i + 1) * seg] if i < segments - 1
                         else seq[(segments - 1) * seg:])
                seg_times = [0.0, 0.0, 0.0]
                for side in [(i + j) % 3 for j in range(3)]:
                    seg_times[side] = drive(side, chunk)
                for k, bs in enumerate(batch_sizes):
                    ratios[bs].append(seg_times[0] / seg_times[k + 1])
        finally:
            if gc_was_enabled:
                gc.enable()
        # bounds-equivalence end state: placements are free, everything
        # else is pinned
        base = scheds[0]
        for other in scheds[1:]:
            assert dict(other.jobs) == dict(base.jobs)
            assert other._max_span_cache == base._max_span_cache
            assert len(other.ledger.entries) == len(base.ledger.entries)
        results["times"] = times
        results["ratios"] = ratios

    benchmark.pedantic(kernel, rounds=1, iterations=1)
    times, ratios = results["times"], results["ratios"]
    med = {bs: statistics.median(ratios[bs]) for bs in batch_sizes}
    n = len(seq)
    rows = [["strict sequential apply", round(n / times[0]),
             round(times[0], 3), "1.00x"]]
    for k, bs in enumerate(batch_sizes):
        rows.append([f"apply_batch({bs}, flexible)",
                     round(n / times[k + 1]), round(times[k + 1], 3),
                     f"{med[bs]:.2f}x"])
    table = format_table(
        ["mode", "req/s (sched)", "sched_s", "median segment speedup"],
        rows,
        title=experiment_header(
            "E14", f"flexible vs strict-sequential on {scenario} "
            "(paired segments, identical job tables + max-span, "
            "placements bounds-equivalent)",
        ),
    )
    record_result(f"e14_flexible_{scenario}", table)
    floor = 1.3 if scenario == "churn-storm" else 1.0
    record_json("BENCH_e14", {
        "experiment": "e14",
        "workload": {"scenario": scenario, "requests": n, "seed": 0,
                     "num_machines": 1, "batch_sizes": list(batch_sizes)},
        "metrics": {
            "requests_per_second_sequential": round(n / times[0]),
            "requests_per_second_flexible_b16": round(n / times[1]),
            "requests_per_second_flexible_b64": round(n / times[2]),
            "flexible_b16_over_sequential_median": round(med[16], 3),
            "flexible_b64_over_sequential_median": round(med[64], 3),
        },
        "claims": {"flexible_b64_median_speedup_above": floor},
    }, section=scenario)
    benchmark.extra_info["flexible_b64_over_sequential_median"] = med[64]
    # The acceptance bar: flexible wins >= 1.3x at batch 64 on the
    # rebuild-heavy scenario (measured ~2x; the pre-size hint removes
    # the trimming layer's mid-batch rebuild storms). Burst-arrivals
    # has little churn to elide, so it only has to not lose.
    assert med[64] >= floor
