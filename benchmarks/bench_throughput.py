"""E10 — systems throughput: requests/second per scheduler.

The engineering table: how fast is each scheduler at processing the
same 8-underallocated churn sequence (no feasibility verification in
the timed region)? The reservation scheduler does O(poly(L_l)) local
work per request; the rebuild baselines pay O(n log n) (EDF/LLF) or
O(n^3) (matching) per request, so their throughput collapses as n
grows. pytest-benchmark provides the timing statistics.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    EDFRebuildScheduler,
    LLFRebuildScheduler,
    MinChangeMatchingScheduler,
    NaivePeckingScheduler,
)
from repro.core.api import ReservationScheduler
from repro.reservation import AlignedReservationScheduler
from repro.sim import run_sequence
from repro.workloads import AlignedWorkloadConfig, random_aligned_sequence


def make_sequence(num_requests=400, seed=0):
    cfg = AlignedWorkloadConfig(
        num_requests=num_requests, gamma=8, horizon=1 << 11,
        max_span=1 << 11, delete_fraction=0.35,
    )
    return random_aligned_sequence(cfg, seed=seed)


SEQ = make_sequence()
SMALL_SEQ = make_sequence(num_requests=120, seed=1)

FACTORIES = {
    "reservation_raw": (lambda: AlignedReservationScheduler(), SEQ),
    "reservation_theorem1": (lambda: ReservationScheduler(1, gamma=8), SEQ),
    "naive_pecking": (lambda: NaivePeckingScheduler(), SEQ),
    "edf_rebuild": (lambda: EDFRebuildScheduler(1), SEQ),
    "llf_rebuild": (lambda: LLFRebuildScheduler(1), SEQ),
    "minchange_matching": (lambda: MinChangeMatchingScheduler(1), SMALL_SEQ),
}


@pytest.mark.parametrize("name", list(FACTORIES))
def test_e10_throughput(benchmark, name):
    factory, seq = FACTORIES[name]

    def kernel():
        run_sequence(factory(), seq, verify_each=False)

    benchmark.pedantic(kernel, rounds=3, iterations=1)
    benchmark.extra_info["requests"] = len(seq)
    benchmark.extra_info["requests_per_second"] = (
        len(seq) / benchmark.stats.stats.mean
    )


def test_e10b_scaling_crossover(benchmark, record_result):
    """EDF's per-request time grows with n (it rebuilds the whole
    schedule); the reservation scheduler's per-request time does not.
    This measures the scaling direction behind the crossover claim."""
    import time

    from repro.sim.report import experiment_header, format_series

    def per_request_us(factory, n_target, seed):
        horizon = 1 << max(10, (16 * n_target - 1).bit_length())
        cfg = AlignedWorkloadConfig(
            num_requests=3 * n_target, gamma=8, horizon=horizon,
            max_span=horizon, delete_fraction=0.25,
        )
        seq = random_aligned_sequence(cfg, seed=seed)
        sched = factory()
        t0 = time.perf_counter()
        run_sequence(sched, seq, verify_each=False)
        return 1e6 * (time.perf_counter() - t0) / len(seq)

    ns = [64, 256, 1024]
    edf_us, res_us = [], []

    def sweep():
        for n in ns:
            edf_us.append(round(per_request_us(
                lambda: EDFRebuildScheduler(1), n, seed=0), 1))
            res_us.append(round(per_request_us(
                lambda: AlignedReservationScheduler(), n, seed=0), 1))

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_series(
        "n", ns,
        {"EDF us/request": edf_us, "reservation us/request": res_us},
        title=experiment_header(
            "E10b", "per-request wall time scaling: rebuilds grow with n, "
            "reservations do not",
        ),
    )
    edf_growth = edf_us[-1] / edf_us[0]
    res_growth = res_us[-1] / res_us[0]
    table += (f"\ngrowth n=64 -> n=1024: EDF {edf_growth:.1f}x, "
              f"reservation {res_growth:.1f}x")
    record_result("e10b_scaling", table)
    # EDF's per-request time grows markedly faster than reservation's.
    assert edf_growth > 3 * res_growth
