#!/usr/bin/env python
"""Run the repo's contract linter: ``python scripts/run_staticcheck.py``.

Thin entry point over :mod:`repro.analysis.staticcheck` (the same code
``repro lint`` runs) that works without an installed package — it puts
``src/`` on ``sys.path`` itself, so CI and pre-commit hooks can call it
from a bare checkout. All ``repro lint`` flags pass through, e.g.::

    python scripts/run_staticcheck.py --strict
    python scripts/run_staticcheck.py --format json src/repro/reservation
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.analysis.staticcheck import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
