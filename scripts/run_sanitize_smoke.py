#!/usr/bin/env python
"""Sanitized differential smoke: ``python scripts/run_sanitize_smoke.py``.

CI's runtime half of the state-integrity gate. Drives seeded
insert/delete churn through all four drive backends with
``REPRO_SANITIZE=1`` (every journaled container wrapped in a checking
:class:`~repro.analysis.sanitize.SanitizedDict` proxy) and holds the
run to two properties:

1. **Zero reports** — no backend trips
   :class:`~repro.analysis.sanitize.UnjournaledMutationError`, i.e.
   every mutation inside an open journal scope was journaled first.
2. **Zero drift** — each sanitized fingerprint (placements, ledger,
   max-span cache, job table) is bit-identical to a plain-arena
   sequential reference run: the proxies observe, they never steer.

A third, non-vacuity probe deletes a journal ack at runtime (no-op
``_jdict``) and *requires* the sanitizer to raise — a smoke run that
passes because the oracle is dead fails here instead.

Writes a JSON summary (``--out``, default
``benchmarks/results/sanitize_smoke_report.json`` — gitignored) for
the CI artifact. Exit 0 clean, 1 on any divergence, missed report, or
vacuous oracle.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

os.environ.setdefault("REPRO_SANITIZE", "1")

from repro.analysis.sanitize import UnjournaledMutationError  # noqa: E402
from repro.core.api import ReservationScheduler  # noqa: E402
from repro.core.job import Job  # noqa: E402
from repro.core.requests import iter_batches  # noqa: E402
from repro.core.window import Window  # noqa: E402
from repro.reservation import AlignedReservationScheduler  # noqa: E402
from repro.workloads import (  # noqa: E402
    AlignedWorkloadConfig,
    random_aligned_sequence,
)

BACKENDS = ("sequential", "batched", "sharded-serial", "sharded-process")

#: (machines, batch_size, seed, delete_fraction) smoke matrix — one
#: single-machine and one delegated case, mirroring the tier-1
#: sanitized-differential test's axes at smoke-sized request counts
CASES = [(1, 16, 0, 0.35), (3, 16, 3, 0.35)]


def churn(requests: int, seed: int, machines: int,
          delete_fraction: float) -> list[Any]:
    cfg = AlignedWorkloadConfig(
        num_requests=requests, num_machines=machines, gamma=8,
        horizon=1 << 11, max_span=1 << 11,
        delete_fraction=delete_fraction,
    )
    return list(random_aligned_sequence(cfg, seed=seed))


def run_backend(seq: list[Any], backend: str, *, machines: int,
                batch_size: int, journal: str) -> tuple[Any, ...]:
    sched = ReservationScheduler(machines, gamma=8, journal=journal)
    try:
        if backend == "sequential":
            for r in seq:
                sched.apply(r)
        else:
            for burst in iter_batches(seq, batch_size):
                if backend == "batched":
                    result = sched.apply_batch(burst, atomic=True)
                elif backend == "sharded-serial":
                    result = sched.apply_batch_sharded(burst)
                else:
                    result = sched.apply_batch_sharded(
                        burst, workers="processes")
                if result.failed:
                    raise AssertionError(
                        f"{backend} burst failed: {result.failure}")
    finally:
        sched.close_shard_workers()
    sched.check_balance()
    return (dict(sched.placements), list(sched.ledger.entries),
            sched._max_span_cache, dict(sched.jobs))


def check_nonvacuous() -> bool:
    """The oracle must still bite: a deleted ack must raise."""
    original = AlignedReservationScheduler._jdict
    AlignedReservationScheduler._jdict = (  # type: ignore[method-assign]
        lambda self, d, key: None)
    try:
        sched = ReservationScheduler(1, gamma=8, journal="arena-sanitize")
        for i in range(8):
            sched.insert(Job(f"probe{i}", Window(0, 64)))
    except UnjournaledMutationError:
        return True
    else:
        return False
    finally:
        AlignedReservationScheduler._jdict = original  # type: ignore[method-assign]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=120,
                        help="churn length per case (default: 120)")
    parser.add_argument("--out", type=Path,
                        default=REPO / "benchmarks" / "results"
                        / "sanitize_smoke_report.json",
                        help="JSON summary path for the CI artifact "
                             "(defaults into benchmarks/results/, which is "
                             "gitignored except for committed BENCH_*.json)")
    args = parser.parse_args(argv)

    summary: dict[str, Any] = {
        "sanitize_env": os.environ.get("REPRO_SANITIZE"),
        "requests_per_case": args.requests,
        "cases": [],
        "reports": 0,
        "ok": True,
    }
    for machines, batch_size, seed, delete_fraction in CASES:
        seq = churn(args.requests, seed, machines, delete_fraction)
        case: dict[str, Any] = {
            "machines": machines, "batch_size": batch_size, "seed": seed,
            "backends": {},
        }
        reference = run_backend(seq, "sequential", machines=machines,
                                batch_size=batch_size, journal="arena")
        for backend in BACKENDS:
            try:
                got = run_backend(seq, backend, machines=machines,
                                  batch_size=batch_size,
                                  journal="arena-sanitize")
            except UnjournaledMutationError as exc:
                case["backends"][backend] = f"report: {exc}"
                summary["reports"] += 1
                summary["ok"] = False
                continue
            matched = got == reference
            case["backends"][backend] = "match" if matched else "DIVERGED"
            if not matched:
                summary["ok"] = False
        summary["cases"].append(case)
        print(f"m={machines} batch={batch_size} seed={seed}: "
              + ", ".join(f"{b}={v}" for b, v in case["backends"].items()))

    summary["nonvacuous"] = check_nonvacuous()
    if not summary["nonvacuous"]:
        summary["ok"] = False
        print("FAIL: injected fault not reported — the oracle is vacuous")
    else:
        print("non-vacuity probe: injected fault reported")

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(summary, indent=2, default=repr) + "\n")
    print(f"summary written to {args.out}")
    if summary["ok"]:
        print("sanitize smoke ok: zero reports, zero drift")
        return 0
    print("sanitize smoke FAILED")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
