#!/usr/bin/env python
"""Bench-artifact schema gate: ``python scripts/check_bench_artifacts.py``.

Validates every committed perf-trajectory artifact
(``benchmarks/results/BENCH_*.json``, ROADMAP observability item c):

1. the file parses as JSON (an interrupted bench can no longer truncate
   one — ``record_json`` writes atomically — but a bad merge still can);
2. each experiment record (the top level for flat artifacts, every
   section for sectioned ones like E12/E13) carries ``experiment``,
   ``workload`` and ``metrics`` blocks;
3. ``metrics`` contains at least one ``requests_per_second*`` field and
   every metric value is a finite number;
4. the E14 flexible-semantics artifact additionally reports both sides
   of its comparison (``requests_per_second_sequential`` and
   ``requests_per_second_flexible_b64``) and the batch-64 speedup claim
   it is asserted against — a semantics bench that silently dropped one
   side would otherwise still pass the generic schema.

Exit 0 when every artifact conforms, 1 otherwise (listing each
violation). CI runs this right after the bench smoke so a bench that
silently stopped recording its headline number fails the build.
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
RESULTS = REPO / "benchmarks" / "results"

REQUIRED_BLOCKS = ("experiment", "workload", "metrics")


#: per-experiment extra requirements: metrics keys and claims keys that
#: must be present in every record of that experiment
EXPERIMENT_CONTRACTS: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "e14": (
        ("requests_per_second_sequential",
         "requests_per_second_flexible_b64",
         "flexible_b64_over_sequential_median"),
        ("flexible_b64_median_speedup_above",),
    ),
}


def check_record(name: str, record: dict, problems: list[str]) -> None:
    """Validate one experiment record (a flat artifact or one section)."""
    for block in REQUIRED_BLOCKS:
        if block not in record:
            problems.append(f"{name}: missing '{block}' block")
    contract = EXPERIMENT_CONTRACTS.get(record.get("experiment", ""))
    if contract is not None:
        metric_keys, claim_keys = contract
        have_metrics = record.get("metrics") or {}
        have_claims = record.get("claims") or {}
        for key in metric_keys:
            if key not in have_metrics:
                problems.append(f"{name}: missing contract metric '{key}'")
        for key in claim_keys:
            if key not in have_claims:
                problems.append(f"{name}: missing contract claim '{key}'")
    metrics = record.get("metrics")
    if not isinstance(metrics, dict):
        if "metrics" in record:
            problems.append(f"{name}: 'metrics' is not an object")
        return
    if not any(k.startswith("requests_per_second") for k in metrics):
        problems.append(f"{name}: no requests_per_second* metric")
    for key, value in metrics.items():
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or not math.isfinite(value):
            problems.append(f"{name}: metric '{key}' is not a finite number "
                            f"(got {value!r})")


def main() -> int:
    artifacts = sorted(RESULTS.glob("BENCH_*.json"))
    if not artifacts:
        print(f"no BENCH_*.json artifacts under {RESULTS}", file=sys.stderr)
        return 1
    problems: list[str] = []
    for path in artifacts:
        rel = path.relative_to(REPO)
        try:
            data = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            problems.append(f"{rel}: unparseable JSON ({exc})")
            continue
        if not isinstance(data, dict) or not data:
            problems.append(f"{rel}: top level is not a non-empty object")
            continue
        if "metrics" in data or "experiment" in data:
            check_record(str(rel), data, problems)
        else:  # sectioned artifact: one record per scenario/machine count
            for section, record in data.items():
                if not isinstance(record, dict):
                    problems.append(
                        f"{rel}[{section}]: section is not an object")
                    continue
                check_record(f"{rel}[{section}]", record, problems)
    if problems:
        for p in problems:
            print(f"bench-artifact: {p}", file=sys.stderr)
        print(f"bench-artifact: {len(problems)} problem(s) in "
              f"{len(artifacts)} artifact(s)", file=sys.stderr)
        return 1
    print(f"bench-artifact: {len(artifacts)} artifact(s) conform")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
