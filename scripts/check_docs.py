#!/usr/bin/env python
"""Docs checker: quoted commands must run, links must resolve.

Used by the CI ``docs`` job. Two passes over the repo's Markdown:

1. **Command check** — every fenced ``bash`` block in README.md and
   docs/*.md is executed line by line (continuation backslashes
   joined, comment lines skipped) from the repo root with
   ``PYTHONPATH=src``. A quoted command that exits non-zero fails the
   job, so the README can never drift from the CLI. Lines invoking
   ``-m pytest`` are skipped here — the tier-1 and bench-smoke CI
   steps run those suites directly — and reported as such.
2. **Link check** — every ``[text](target)`` in every tracked *.md is
   resolved: relative targets must exist on disk (anchors stripped);
   http(s) targets are format-checked only (CI has no network
   guarantees).

Run locally:  python scripts/check_docs.py
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

COMMAND_DOCS = ["README.md", "docs/ARCHITECTURE.md",
                "docs/STATIC_ANALYSIS.md"]

#: raw paper/snippet retrieval artifacts — their bodies quote external
#: markdown verbatim (inline figures etc.), not links this repo owns
LINK_CHECK_EXCLUDE = {"PAPERS.md", "SNIPPETS.md"}

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```(\w*)\s*$")


def iter_markdown() -> list[Path]:
    out = subprocess.run(
        ["git", "ls-files", "--cached", "--others", "--exclude-standard",
         "*.md", "**/*.md"], cwd=REPO,
        capture_output=True, text=True, check=True,
    )
    files = sorted({REPO / line for line in out.stdout.splitlines() if line})
    return [f for f in files
            if f.is_file() and f.name not in LINK_CHECK_EXCLUDE]


def extract_bash_blocks(path: Path) -> list[list[str]]:
    blocks: list[list[str]] = []
    current: list[str] | None = None
    for line in path.read_text().splitlines():
        m = FENCE_RE.match(line.strip())
        if m:
            if current is not None:
                blocks.append(current)
                current = None
            elif m.group(1) == "bash":
                current = []
            continue
        if current is not None:
            current.append(line)
    return blocks


def join_continuations(lines: list[str]) -> list[str]:
    commands: list[str] = []
    buf = ""
    for line in lines:
        stripped = line.strip()
        if not stripped or (stripped.startswith("#") and not buf):
            continue
        if stripped.endswith("\\"):
            buf += stripped[:-1] + " "
            continue
        commands.append((buf + stripped).strip())
        buf = ""
    if buf:
        commands.append(buf.strip())
    return commands


def check_commands() -> int:
    failures = 0
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        "src" + (os.pathsep + env["PYTHONPATH"] if "PYTHONPATH" in env else "")
    )
    for doc in COMMAND_DOCS:
        path = REPO / doc
        if not path.exists():
            print(f"FAIL {doc}: missing")
            failures += 1
            continue
        for block in extract_bash_blocks(path):
            for cmd in join_continuations(block):
                if "-m pytest" in cmd:
                    print(f"skip {doc}: {cmd!r} (covered by tier-1/bench "
                          "CI steps)")
                    continue
                print(f"run  {doc}: {cmd!r}")
                proc = subprocess.run(
                    cmd, shell=True, cwd=REPO, env=env,
                    stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
                    text=True, timeout=600,
                )
                if proc.returncode != 0:
                    print(f"FAIL {doc}: {cmd!r} exited "
                          f"{proc.returncode}\n{proc.stderr[-2000:]}")
                    failures += 1
    return failures


def check_links() -> int:
    failures = 0
    checked = 0
    for md in iter_markdown():
        rel = md.relative_to(REPO)
        for target in LINK_RE.findall(md.read_text()):
            checked += 1
            if target.startswith(("http://", "https://")):
                if " " in target:
                    print(f"FAIL {rel}: malformed URL {target!r}")
                    failures += 1
                continue
            if target.startswith(("#", "mailto:")):
                continue
            local = target.split("#", 1)[0]
            resolved = (md.parent / local).resolve()
            if not resolved.exists():
                print(f"FAIL {rel}: broken link {target!r}")
                failures += 1
    print(f"link check: {checked} links scanned")
    return failures


def main() -> int:
    failures = check_commands()
    failures += check_links()
    if failures:
        print(f"\n{failures} docs failure(s)")
        return 1
    print("\ndocs ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
